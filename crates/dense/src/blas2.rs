//! BLAS level-2: matrix-vector operations.
//!
//! `gemv_t` on a tall-skinny matrix is the workhorse of the paper's CGS
//! orthogonalization (`xGEMV` in Fig. 10); `gemv_n` applies the projection
//! update `v -= V r`.

use crate::Mat;
use ca_scalar::Scalar;

/// `y := alpha * A x + beta * y` (no transpose). `A` is `m x n`, `x` has
/// length `n`, `y` has length `m`.
pub fn gemv_n<T: Scalar>(alpha: T, a: &Mat<T>, x: &[T], beta: T, y: &mut [T]) {
    assert_eq!(a.ncols(), x.len());
    assert_eq!(a.nrows(), y.len());
    if beta == T::ZERO {
        y.iter_mut().for_each(|v| *v = T::ZERO);
    } else if beta != T::ONE {
        y.iter_mut().for_each(|v| *v *= beta);
    }
    // column-major: stream each column once, rank-1 update of y.
    for j in 0..a.ncols() {
        let axj = alpha * x[j];
        if axj != T::ZERO {
            let col = a.col(j);
            for (yi, &aij) in y.iter_mut().zip(col) {
                *yi += axj * aij;
            }
        }
    }
}

/// `y := alpha * A^T x + beta * y`. `A` is `m x n`, `x` has length `m`,
/// `y` has length `n`. Each output entry is a dot product with a column —
/// this is exactly the "one thread block per column" decomposition the paper
/// uses for its optimized tall-skinny MAGMA DGEMV (§V-F).
pub fn gemv_t<T: Scalar>(alpha: T, a: &Mat<T>, x: &[T], beta: T, y: &mut [T]) {
    assert_eq!(a.nrows(), x.len());
    assert_eq!(a.ncols(), y.len());
    for j in 0..a.ncols() {
        let d = crate::blas1::dot(a.col(j), x);
        y[j] = alpha * d + if beta == T::ZERO { T::ZERO } else { beta * y[j] };
    }
}

/// Rank-1 update `A += alpha * x y^T`.
pub fn ger<T: Scalar>(alpha: T, x: &[T], y: &[T], a: &mut Mat<T>) {
    assert_eq!(a.nrows(), x.len());
    assert_eq!(a.ncols(), y.len());
    for j in 0..a.ncols() {
        let ayj = alpha * y[j];
        if ayj != T::ZERO {
            let col = a.col_mut(j);
            for (aij, &xi) in col.iter_mut().zip(x) {
                *aij += ayj * xi;
            }
        }
    }
}

/// Triangular solve `x := R^{-1} x` with `R` upper triangular (`n x n`),
/// i.e. back substitution. Returns the index of a zero diagonal on failure.
pub fn trsv_upper<T: Scalar>(r: &Mat<T>, x: &mut [T]) -> crate::Result<()> {
    let n = r.ncols();
    assert_eq!(r.nrows(), n);
    assert_eq!(x.len(), n);
    for i in (0..n).rev() {
        let d = r[(i, i)];
        if d == T::ZERO {
            return Err(crate::DenseError::SingularTriangular { index: i });
        }
        let mut s = x[i];
        for j in i + 1..n {
            s -= r[(i, j)] * x[j];
        }
        x[i] = s / d;
    }
    Ok(())
}

/// Triangular solve `x := L^{-1} x` with `L` lower triangular, forward
/// substitution.
pub fn trsv_lower<T: Scalar>(l: &Mat<T>, x: &mut [T]) -> crate::Result<()> {
    let n = l.ncols();
    assert_eq!(l.nrows(), n);
    assert_eq!(x.len(), n);
    for i in 0..n {
        let d = l[(i, i)];
        if d == T::ZERO {
            return Err(crate::DenseError::SingularTriangular { index: i });
        }
        let mut s = x[i];
        for j in 0..i {
            s -= l[(i, j)] * x[j];
        }
        x[i] = s / d;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mat() -> Mat {
        Mat::from_fn(4, 3, |i, j| (i as f64 + 1.0) * (j as f64 + 1.0) + 0.25 * i as f64)
    }

    #[test]
    fn gemv_n_matches_naive() {
        let a = sample_mat();
        let x = [1.0, -2.0, 0.5];
        let mut y = [1.0; 4];
        gemv_n(2.0, &a, &x, 3.0, &mut y);
        for i in 0..4 {
            let naive: f64 = (0..3).map(|j| a[(i, j)] * x[j]).sum();
            assert!((y[i] - (2.0 * naive + 3.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn gemv_t_matches_naive() {
        let a = sample_mat();
        let x = [1.0, 0.0, -1.0, 2.0];
        let mut y = [0.0; 3];
        gemv_t(1.0, &a, &x, 0.0, &mut y);
        for j in 0..3 {
            let naive: f64 = (0..4).map(|i| a[(i, j)] * x[i]).sum();
            assert!((y[j] - naive).abs() < 1e-12);
        }
    }

    #[test]
    fn gemv_beta_zero_ignores_garbage() {
        let a = Mat::identity(2);
        let mut y = [f64::NAN, f64::NAN];
        gemv_n(1.0, &a, &[1.0, 2.0], 0.0, &mut y);
        assert_eq!(y, [1.0, 2.0]);
    }

    #[test]
    fn ger_rank1() {
        let mut a = Mat::zeros(2, 2);
        ger(1.0, &[1.0, 2.0], &[3.0, 4.0], &mut a);
        assert_eq!(a[(0, 0)], 3.0);
        assert_eq!(a[(1, 1)], 8.0);
    }

    #[test]
    fn trsv_upper_solves() {
        // R = [2 1; 0 4], b = [4, 8] -> x = [1, 2]
        let mut r = Mat::zeros(2, 2);
        r[(0, 0)] = 2.0;
        r[(0, 1)] = 1.0;
        r[(1, 1)] = 4.0;
        let mut x = [4.0, 8.0];
        trsv_upper(&r, &mut x).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-15);
        assert!((x[1] - 2.0).abs() < 1e-15);
    }

    #[test]
    fn trsv_reports_singularity() {
        let r = Mat::zeros(2, 2);
        let mut x = [1.0, 1.0];
        assert!(matches!(
            trsv_upper(&r, &mut x),
            Err(crate::DenseError::SingularTriangular { .. })
        ));
    }

    #[test]
    fn trsv_lower_solves() {
        let mut l = Mat::zeros(2, 2);
        l[(0, 0)] = 2.0;
        l[(1, 0)] = 1.0;
        l[(1, 1)] = 4.0;
        let mut x = [2.0, 9.0];
        trsv_lower(&l, &mut x).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-15);
        assert!((x[1] - 2.0).abs() < 1e-15);
    }
}
