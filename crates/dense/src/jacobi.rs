//! Cyclic Jacobi eigensolver for small symmetric matrices, and the SVD of
//! symmetric positive-semidefinite Gram matrices built on top of it.
//!
//! SVQR (paper §V-D) factors the Gram matrix `B = U Sigma U^T` and then QRs
//! `Sigma^{1/2} U^T`. `B` is tiny (`(s+1) x (s+1)`, s ~ 10-30), so the
//! quadratically-convergent Jacobi sweep is both fast and — important for
//! the paper's error study — the most element-wise accurate method
//! available. The diagonal-scaling stabilization of Stathopoulos & Wu \[20\]
//! (scale `B` so its diagonal is 1 before the SVD) is provided as
//! [`sym_svd_scaled`].

use crate::Mat;

/// Eigendecomposition `B = V diag(vals) V^T` of a symmetric matrix using
/// cyclic Jacobi rotations. Returns `(vals, V)` with eigenvalues in
/// descending order and eigenvectors in the matching columns of `V`.
///
/// `max_sweeps` bounds the number of full cyclic sweeps; 30 is ample for
/// the matrix orders used here (convergence is quadratic).
pub fn sym_eig(b: &Mat, max_sweeps: usize) -> (Vec<f64>, Mat) {
    let n = b.ncols();
    assert_eq!(b.nrows(), n);
    let mut a = b.clone();
    // Symmetrize defensively: callers hand us Gram matrices that are
    // symmetric up to rounding.
    for j in 0..n {
        for i in 0..j {
            let s = 0.5 * (a[(i, j)] + a[(j, i)]);
            a[(i, j)] = s;
            a[(j, i)] = s;
        }
    }
    let mut v = Mat::identity(n);
    let tol = 1e-15 * a.fro_norm().max(f64::MIN_POSITIVE);

    for _sweep in 0..max_sweeps {
        let mut off = 0.0f64;
        for j in 0..n {
            for i in 0..j {
                off = off.max(a[(i, j)].abs());
            }
        }
        if off <= tol {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = a[(p, q)];
                if apq.abs() <= tol * 1e-2 {
                    continue;
                }
                let app = a[(p, p)];
                let aqq = a[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (1.0 + theta * theta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply rotation J(p, q, theta) on both sides of A.
                for k in 0..n {
                    let akp = a[(k, p)];
                    let akq = a[(k, q)];
                    a[(k, p)] = c * akp - s * akq;
                    a[(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[(p, k)];
                    let aqk = a[(q, k)];
                    a[(p, k)] = c * apk - s * aqk;
                    a[(q, k)] = s * apk + c * aqk;
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut vals: Vec<f64> = (0..n).map(|i| a[(i, i)]).collect();
    // Sort descending, permuting eigenvector columns along.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&x, &y| vals[y].total_cmp(&vals[x]));
    let sorted_vals: Vec<f64> = order.iter().map(|&i| vals[i]).collect();
    let mut sorted_v = Mat::zeros(n, n);
    for (dst, &src) in order.iter().enumerate() {
        sorted_v.set_col(dst, v.col(src));
    }
    vals = sorted_vals;
    (vals, sorted_v)
}

/// Result of the Gram-matrix SVD used by SVQR.
#[derive(Debug, Clone)]
pub struct GramSvd {
    /// Singular values (eigenvalues of `B` clamped at zero), descending.
    pub sigma: Vec<f64>,
    /// Left/right singular vectors of the symmetric `B` (`U` in `B = U S U^T`).
    pub u: Mat,
}

/// SVD of a symmetric positive-semidefinite matrix: `B = U diag(sigma) U^T`.
/// Negative rounding-noise eigenvalues are clamped to zero.
pub fn sym_svd(b: &Mat) -> GramSvd {
    let (vals, u) = sym_eig(b, 60);
    let sigma = vals.into_iter().map(|v| v.max(0.0)).collect();
    GramSvd { sigma, u }
}

/// SVD of a Gram matrix with the diagonal-scaling stabilization: factor
/// `B = D C D` with `D = diag(sqrt(b_ii))`, take the SVD of the
/// correlation-like `C` (unit diagonal), and return factors of the original
/// `B` reconstructed through `D`. The paper observes (§V-D) that this
/// scaling resolves SVQR's element-wise error growth on graded Gram
/// matrices. Returns `(d, svd_of_C)`; the SVQR caller forms
/// `R := qr(Sigma_C^{1/2} U_C^T D)`.
pub fn sym_svd_scaled(b: &Mat) -> (Vec<f64>, GramSvd) {
    let n = b.ncols();
    let d: Vec<f64> = (0..n).map(|i| b[(i, i)].max(0.0).sqrt()).collect();
    let mut c = Mat::zeros(n, n);
    for j in 0..n {
        for i in 0..n {
            let dij = d[i] * d[j];
            c[(i, j)] = if dij > 0.0 { b[(i, j)] / dij } else { 0.0 };
        }
    }
    (d, sym_svd(&c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::{gemm_nn, gemm_tn};

    fn sym(n: usize, seed: u64) -> Mat {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let raw = Mat::from_fn(n, n, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        });
        let mut s = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                s[(i, j)] = 0.5 * (raw[(i, j)] + raw[(j, i)]);
            }
        }
        s
    }

    fn reconstruct(vals: &[f64], v: &Mat) -> Mat {
        let n = vals.len();
        let mut vs = v.clone();
        for (j, &l) in vals.iter().enumerate() {
            crate::blas1::scal(l, vs.col_mut(j));
        }
        let vt = v.transpose();
        let mut out = Mat::zeros(n, n);
        gemm_nn(1.0, &vs, &vt, 0.0, &mut out);
        out
    }

    #[test]
    fn eig_reconstructs_symmetric() {
        let b = sym(7, 42);
        let (vals, v) = sym_eig(&b, 60);
        let rec = reconstruct(&vals, &v);
        for i in 0..7 {
            for j in 0..7 {
                assert!((rec[(i, j)] - b[(i, j)]).abs() < 1e-12, "({i},{j})");
            }
        }
        // descending order
        for w in vals.windows(2) {
            assert!(w[0] >= w[1] - 1e-14);
        }
    }

    #[test]
    fn eigvectors_orthonormal() {
        let b = sym(9, 7);
        let (_, v) = sym_eig(&b, 60);
        let mut g = Mat::zeros(9, 9);
        gemm_tn(1.0, &v, &v, 0.0, &mut g);
        for i in 0..9 {
            for j in 0..9 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((g[(i, j)] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let mut b = Mat::zeros(3, 3);
        b[(0, 0)] = 3.0;
        b[(1, 1)] = -1.0;
        b[(2, 2)] = 2.0;
        let (vals, _) = sym_eig(&b, 10);
        assert!((vals[0] - 3.0).abs() < 1e-14);
        assert!((vals[1] - 2.0).abs() < 1e-14);
        assert!((vals[2] + 1.0).abs() < 1e-14);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1
        let mut b = Mat::zeros(2, 2);
        b[(0, 0)] = 2.0;
        b[(0, 1)] = 1.0;
        b[(1, 0)] = 1.0;
        b[(1, 1)] = 2.0;
        let (vals, _) = sym_eig(&b, 10);
        assert!((vals[0] - 3.0).abs() < 1e-14);
        assert!((vals[1] - 1.0).abs() < 1e-14);
    }

    #[test]
    fn svd_clamps_negatives() {
        let mut b = Mat::identity(2);
        b[(1, 1)] = -1e-17; // rounding-noise negative eigenvalue
        let svd = sym_svd(&b);
        assert!(svd.sigma.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn scaled_svd_unit_diagonal() {
        let a = Mat::from_fn(20, 4, |i, j| ((i + 2 * j) as f64).cos() * 10f64.powi(j as i32));
        let mut b = Mat::zeros(4, 4);
        gemm_tn(1.0, &a, &a, 0.0, &mut b);
        let (d, svd) = sym_svd_scaled(&b);
        // d recovers the diagonal scale
        for (i, &di) in d.iter().enumerate() {
            assert!((di * di - b[(i, i)]).abs() < 1e-9 * b[(i, i)]);
        }
        // the scaled matrix's eigenvalues sum to n (trace of unit-diagonal C)
        let trace: f64 = svd.sigma.iter().sum();
        assert!((trace - 4.0).abs() < 1e-10);
    }
}
