//! Upper-Hessenberg utilities for GMRES.
//!
//! Two pieces of the paper live here:
//!
//! 1. [`GivensLsq`] — the incremental Givens-rotation QR of the
//!    `(m+1) x m` Hessenberg matrix that solves GMRES's small least-squares
//!    problem `y := argmin ||c - H z||` in O(m) per iteration and exposes
//!    the current residual norm for free (§III: "the least-squares problem
//!    can be efficiently solved, requiring only about 3(m+1)^2 flops").
//! 2. [`hessenberg_eigenvalues`] — eigenvalues of the first restart's
//!    Hessenberg matrix, which approximate extreme eigenvalues of `A` and
//!    become the Newton-basis shifts theta_k (§IV-A, ref \[17\]).

use crate::Mat;

/// A complex number represented as a `(re, im)` pair; eigenvalues of real
/// Hessenberg matrices come in conjugate pairs and we avoid pulling in a
/// complex-arithmetic dependency for just this.
pub type Complex = (f64, f64);

/// Incremental Givens-rotation least-squares solver for the GMRES
/// Hessenberg system.
///
/// Feed one Hessenberg column per iteration with [`GivensLsq::push_column`];
/// query the implicitly-updated residual norm with
/// [`GivensLsq::residual_norm`]; extract the solution `y` with
/// [`GivensLsq::solve`].
#[derive(Debug, Clone)]
pub struct GivensLsq {
    /// Triangularized Hessenberg columns (column j has j+1 live entries).
    r: Vec<Vec<f64>>,
    /// Accumulated Givens cosines/sines.
    cs: Vec<(f64, f64)>,
    /// Rotated right-hand side; g[k] for k < cols are solved components,
    /// |g[cols]| is the residual norm.
    g: Vec<f64>,
}

impl GivensLsq {
    /// Start a solve with initial residual norm `beta` (the RHS is
    /// `beta * e_1`).
    pub fn new(beta: f64) -> Self {
        Self { r: Vec::new(), cs: Vec::new(), g: vec![beta] }
    }

    /// Number of columns pushed so far.
    pub fn ncols(&self) -> usize {
        self.r.len()
    }

    /// Push Hessenberg column `j` = `[h(0,j) .. h(j+1,j)]` (length
    /// `ncols() + 2`): apply all previous rotations, generate and apply the
    /// new one, update the rotated RHS.
    pub fn push_column(&mut self, h_col: &[f64]) {
        let j = self.r.len();
        assert_eq!(h_col.len(), j + 2, "Hessenberg column {j} must have {} entries", j + 2);
        let mut col = h_col.to_vec();
        // Apply existing rotations.
        for (k, &(c, s)) in self.cs.iter().enumerate() {
            let t0 = c * col[k] + s * col[k + 1];
            let t1 = -s * col[k] + c * col[k + 1];
            col[k] = t0;
            col[k + 1] = t1;
        }
        // Generate a new rotation to annihilate col[j + 1].
        let (c, s) = givens(col[j], col[j + 1]);
        let t0 = c * col[j] + s * col[j + 1];
        col[j] = t0;
        col.truncate(j + 1);
        self.cs.push((c, s));
        // Rotate the RHS.
        let gj = self.g[j];
        self.g[j] = c * gj;
        self.g.push(-s * gj);
        self.r.push(col);
    }

    /// Current least-squares residual norm `||c - H y||`.
    pub fn residual_norm(&self) -> f64 {
        self.g.last().copied().unwrap_or(0.0).abs()
    }

    /// Solve the triangular system for the current `y` (length `ncols()`).
    pub fn solve(&self) -> Vec<f64> {
        let n = self.r.len();
        let mut y = self.g[..n].to_vec();
        for i in (0..n).rev() {
            for k in i + 1..n {
                y[i] -= self.r[k][i] * y[k];
            }
            y[i] /= self.r[i][i];
        }
        y
    }
}

/// Construct a Givens rotation `(c, s)` with `c*a + s*b = r`, `-s*a + c*b = 0`.
pub fn givens(a: f64, b: f64) -> (f64, f64) {
    if b == 0.0 {
        (1.0, 0.0)
    } else if a == 0.0 {
        (0.0, b.signum())
    } else {
        let r = (a * a + b * b).sqrt();
        (a / r, b / r)
    }
}

/// Eigenvalues of a small upper-Hessenberg matrix by the implicit
/// double-shift (Francis) QR algorithm. Returns `m` eigenvalues as
/// `(re, im)` pairs; complex eigenvalues appear in conjugate pairs.
///
/// Sizes here are tiny (m <= ~200: the GMRES restart length), so no
/// balancing or aggressive deflation is needed.
pub fn hessenberg_eigenvalues(h_in: &Mat) -> crate::Result<Vec<Complex>> {
    let n = h_in.ncols();
    assert_eq!(h_in.nrows(), n);
    if n == 0 {
        return Ok(Vec::new());
    }
    let mut h = h_in.clone();
    let mut eigs: Vec<Complex> = Vec::with_capacity(n);
    let mut hi = n; // active block is h[0..hi, 0..hi]
    let max_iter = 60 * n.max(1);
    let mut iter = 0usize;

    while hi > 0 {
        if iter > max_iter {
            return Err(crate::DenseError::NoConvergence { iterations: iter });
        }
        // Find deflation point: largest lo with negligible subdiagonal.
        let mut lo = hi - 1;
        while lo > 0 {
            let s = h[(lo - 1, lo - 1)].abs() + h[(lo, lo)].abs();
            let s = if s == 0.0 { 1.0 } else { s };
            if h[(lo, lo - 1)].abs() <= f64::EPSILON * s {
                h[(lo, lo - 1)] = 0.0;
                break;
            }
            lo -= 1;
        }

        if lo == hi - 1 {
            // 1x1 block deflated.
            eigs.push((h[(hi - 1, hi - 1)], 0.0));
            hi -= 1;
            continue;
        }
        if lo == hi - 2 {
            // 2x2 block deflated: closed-form eigenvalues.
            let (a, b, c, d) = (
                h[(hi - 2, hi - 2)],
                h[(hi - 2, hi - 1)],
                h[(hi - 1, hi - 2)],
                h[(hi - 1, hi - 1)],
            );
            let tr = a + d;
            let det = a * d - b * c;
            let disc = tr * tr / 4.0 - det;
            if disc >= 0.0 {
                let sq = disc.sqrt();
                eigs.push((tr / 2.0 + sq, 0.0));
                eigs.push((tr / 2.0 - sq, 0.0));
            } else {
                let sq = (-disc).sqrt();
                eigs.push((tr / 2.0, sq));
                eigs.push((tr / 2.0, -sq));
            }
            hi -= 2;
            continue;
        }

        // Francis implicit double-shift sweep on h[lo..hi, lo..hi].
        iter += 1;
        let m = hi - 1;
        let (s, t) = {
            // shift from the trailing 2x2: s = trace, t = det
            let (a, b, c, d) = (h[(m - 1, m - 1)], h[(m - 1, m)], h[(m, m - 1)], h[(m, m)]);
            (a + d, a * d - b * c)
        };
        // Exceptional shift every 10 iterations to break cycles.
        let (s, t) = if iter.is_multiple_of(20) {
            let e = h[(m, m - 1)].abs() + h[(m - 1, m - 2)].abs();
            (1.5 * e, e * e)
        } else {
            (s, t)
        };

        // First column of (H - s1 I)(H - s2 I) restricted to 3 entries.
        let h00 = h[(lo, lo)];
        let h10 = h[(lo + 1, lo)];
        let mut x = h00 * h00 + h[(lo, lo + 1)] * h10 - s * h00 + t;
        let mut y = h10 * (h00 + h[(lo + 1, lo + 1)] - s);
        let mut z = if lo + 2 < hi { h[(lo + 2, lo + 1)] * h10 } else { 0.0 };

        for k in lo..hi - 2 {
            // Householder on (x, y, z): P = I - 2 v v^T / v^T v
            let (v, beta) = house3(x, y, z);
            if beta != 0.0 {
                let r0 = if k > lo { k - 1 } else { lo };
                // Apply P from the left to rows k..k+3, cols r0..hi.
                for c in r0.max(lo)..hi {
                    let d0 = h[(k, c)];
                    let d1 = h[(k + 1, c)];
                    let d2 = if k + 2 < hi { h[(k + 2, c)] } else { 0.0 };
                    let w = v[0] * d0 + v[1] * d1 + v[2] * d2;
                    h[(k, c)] = d0 - beta * w * v[0];
                    h[(k + 1, c)] = d1 - beta * w * v[1];
                    if k + 2 < hi {
                        h[(k + 2, c)] = d2 - beta * w * v[2];
                    }
                }
                // Apply P from the right to cols k..k+3, rows lo..min(k+4, hi).
                let rmax = (k + 4).min(hi);
                for r in lo..rmax {
                    let d0 = h[(r, k)];
                    let d1 = h[(r, k + 1)];
                    let d2 = if k + 2 < hi { h[(r, k + 2)] } else { 0.0 };
                    let w = v[0] * d0 + v[1] * d1 + v[2] * d2;
                    h[(r, k)] = d0 - beta * w * v[0];
                    h[(r, k + 1)] = d1 - beta * w * v[1];
                    if k + 2 < hi {
                        h[(r, k + 2)] = d2 - beta * w * v[2];
                    }
                }
            }
            x = h[(k + 1, k)];
            y = h[(k + 2, k)];
            z = if k + 3 < hi { h[(k + 3, k)] } else { 0.0 };
        }
        // Final 2x2 rotation to restore Hessenberg form.
        let k = hi - 2;
        let (c, s2) = givens(x, y);
        if s2 != 0.0 {
            for cc in k.saturating_sub(1).max(lo)..hi {
                let d0 = h[(k, cc)];
                let d1 = h[(k + 1, cc)];
                h[(k, cc)] = c * d0 + s2 * d1;
                h[(k + 1, cc)] = -s2 * d0 + c * d1;
            }
            for r in lo..hi {
                let d0 = h[(r, k)];
                let d1 = h[(r, k + 1)];
                h[(r, k)] = c * d0 + s2 * d1;
                h[(r, k + 1)] = -s2 * d0 + c * d1;
            }
        }
        // Clean sub-sub-diagonal fill-in.
        for r in lo + 2..hi {
            for cc in lo..r - 1 {
                h[(r, cc)] = 0.0;
            }
        }
    }

    Ok(eigs)
}

/// Householder vector for a 3-vector: returns (v with v\[0\] = 1 implicit
/// normalization folded in, beta) such that (I - beta v v^T)(x,y,z) is a
/// multiple of e1.
fn house3(x: f64, y: f64, z: f64) -> ([f64; 3], f64) {
    let alpha = (x * x + y * y + z * z).sqrt();
    if alpha == 0.0 {
        return ([0.0; 3], 0.0);
    }
    let alpha = if x > 0.0 { -alpha } else { alpha };
    let v0 = x - alpha;
    let v = [v0, y, z];
    let vtv = v0 * v0 + y * y + z * z;
    if vtv == 0.0 {
        ([0.0; 3], 0.0)
    } else {
        (v, 2.0 / vtv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn givens_annihilates() {
        let (c, s) = givens(3.0, 4.0);
        assert!((-s * 3.0 + c * 4.0).abs() < 1e-15);
        assert!((c * 3.0 + s * 4.0 - 5.0).abs() < 1e-15);
    }

    #[test]
    fn lsq_exact_small_system() {
        // H = [[2],[1]] (2x1 Hessenberg), c = beta*e1 with beta = 5.
        // minimize ||(5,0) - (2,1)^T y||: y = 10/5 = 2, residual = |5 - 2*2, -2| ... compute:
        // normal eq: (4+1) y = 2*5 -> y = 2; r = (5-4, -2) = (1,-2), ||r|| = sqrt(5)
        let mut lsq = GivensLsq::new(5.0);
        lsq.push_column(&[2.0, 1.0]);
        let y = lsq.solve();
        assert!((y[0] - 2.0).abs() < 1e-14);
        assert!((lsq.residual_norm() - 5f64.sqrt()).abs() < 1e-14);
    }

    #[test]
    fn lsq_matches_normal_equations() {
        // Random 5x4 Hessenberg, compare against dense normal-equation solve.
        let m = 4;
        let mut h = Mat::zeros(m + 1, m);
        let mut state = 99u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        for j in 0..m {
            for i in 0..=(j + 1) {
                h[(i, j)] = rnd() + if i == j { 2.0 } else { 0.0 };
            }
        }
        let beta = 3.0;
        let mut lsq = GivensLsq::new(beta);
        for j in 0..m {
            let col: Vec<f64> = (0..=j + 1).map(|i| h[(i, j)]).collect();
            lsq.push_column(&col);
        }
        let y = lsq.solve();
        // residual check: c - H y
        let mut r = vec![0.0; m + 1];
        r[0] = beta;
        for j in 0..m {
            for i in 0..=(j + 1) {
                r[i] -= h[(i, j)] * y[j];
            }
        }
        let rn = crate::blas1::nrm2(&r);
        assert!((rn - lsq.residual_norm()).abs() < 1e-12);
        // optimality: H^T r = 0
        for j in 0..m {
            let mut d = 0.0;
            for i in 0..=(j + 1) {
                d += h[(i, j)] * r[i];
            }
            assert!(d.abs() < 1e-11, "gradient {d}");
        }
    }

    #[test]
    fn residual_norm_monotone() {
        let mut lsq = GivensLsq::new(1.0);
        let mut prev = lsq.residual_norm();
        let cols: [&[f64]; 3] = [&[0.5, 1.0], &[0.3, 0.7, 0.9], &[0.1, 0.2, 0.4, 0.8]];
        for c in cols {
            lsq.push_column(c);
            let rn = lsq.residual_norm();
            assert!(rn <= prev + 1e-15);
            prev = rn;
        }
    }

    #[test]
    fn eig_diagonal_hessenberg() {
        let mut h = Mat::zeros(3, 3);
        h[(0, 0)] = 1.0;
        h[(1, 1)] = 2.0;
        h[(2, 2)] = 3.0;
        let mut e = hessenberg_eigenvalues(&h).unwrap();
        e.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        assert!((e[0].0 - 1.0).abs() < 1e-12);
        assert!((e[2].0 - 3.0).abs() < 1e-12);
        assert!(e.iter().all(|&(_, im)| im == 0.0));
    }

    #[test]
    fn eig_rotation_block_is_complex() {
        // [[0,-1],[1,0]] has eigenvalues +-i
        let mut h = Mat::zeros(2, 2);
        h[(0, 1)] = -1.0;
        h[(1, 0)] = 1.0;
        let e = hessenberg_eigenvalues(&h).unwrap();
        assert_eq!(e.len(), 2);
        for (re, im) in e {
            assert!(re.abs() < 1e-12);
            assert!((im.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn eig_matches_characteristic_poly_roots() {
        // Companion matrix of x^3 - 6x^2 + 11x - 6 = (x-1)(x-2)(x-3),
        // which is upper Hessenberg.
        let mut h = Mat::zeros(3, 3);
        h[(0, 2)] = 6.0;
        h[(1, 2)] = -11.0;
        h[(2, 2)] = 6.0;
        h[(1, 0)] = 1.0;
        h[(2, 1)] = 1.0;
        let mut e = hessenberg_eigenvalues(&h).unwrap();
        e.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        assert!((e[0].0 - 1.0).abs() < 1e-9, "{e:?}");
        assert!((e[1].0 - 2.0).abs() < 1e-9, "{e:?}");
        assert!((e[2].0 - 3.0).abs() < 1e-9, "{e:?}");
    }

    #[test]
    fn eig_larger_hessenberg_traces_match() {
        // Trace and sum of eigenvalues must agree; complex parts cancel.
        let n = 12;
        let mut state = 5u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let mut h = Mat::zeros(n, n);
        for j in 0..n {
            for i in 0..=(j + 1).min(n - 1) {
                h[(i, j)] = rnd();
            }
        }
        let e = hessenberg_eigenvalues(&h).unwrap();
        assert_eq!(e.len(), n);
        let tr: f64 = (0..n).map(|i| h[(i, i)]).sum();
        let es: f64 = e.iter().map(|&(re, _)| re).sum();
        let ims: f64 = e.iter().map(|&(_, im)| im).sum();
        assert!((tr - es).abs() < 1e-8 * tr.abs().max(1.0), "trace {tr} vs {es}");
        assert!(ims.abs() < 1e-9);
    }
}
