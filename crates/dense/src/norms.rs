//! Error norms used by the paper's Figure 13 TSQR study.
//!
//! Three quantities are reported there for each orthogonalization procedure:
//! the orthogonality error `||I - Q^T Q||`, the relative factorization
//! error `||QR - V|| / ||V||`, and the element-wise error
//! `||(V - QR) ./ V||` (entry-wise quotient, see Fig. 13 caption).

use crate::blas3::{gemm_nn, gemm_tn};
use crate::Mat;

/// Orthogonality error `||I - Q^T Q||_F`.
pub fn orthogonality_error(q: &Mat) -> f64 {
    let k = q.ncols();
    let mut g = Mat::zeros(k, k);
    gemm_tn(1.0, q, q, 0.0, &mut g);
    for i in 0..k {
        g[(i, i)] -= 1.0;
    }
    g.fro_norm()
}

/// Relative factorization error `||V - Q R||_F / ||V||_F`.
pub fn factorization_error(v: &Mat, q: &Mat, r: &Mat) -> f64 {
    let mut qr = Mat::zeros(v.nrows(), v.ncols());
    gemm_nn(1.0, q, r, 0.0, &mut qr);
    qr.axpy(-1.0, v);
    let denom = v.fro_norm();
    if denom == 0.0 {
        qr.fro_norm()
    } else {
        qr.fro_norm() / denom
    }
}

/// Element-wise factorization error `max_ij |(v_ij - (QR)_ij) / v_ij|`,
/// skipping exactly-zero entries of `V` (the paper's `||(A - QR)./A||`).
pub fn elementwise_error(v: &Mat, q: &Mat, r: &Mat) -> f64 {
    let mut qr = Mat::zeros(v.nrows(), v.ncols());
    gemm_nn(1.0, q, r, 0.0, &mut qr);
    let mut worst = 0.0f64;
    for j in 0..v.ncols() {
        for i in 0..v.nrows() {
            let vij = v[(i, j)];
            if vij != 0.0 {
                worst = worst.max(((vij - qr[(i, j)]) / vij).abs());
            }
        }
    }
    worst
}

/// Infinity norm of a vector difference, `||x - y||_inf`.
pub fn vec_inf_diff(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qr::householder_qr;

    #[test]
    fn identity_has_zero_orth_error() {
        assert_eq!(orthogonality_error(&Mat::identity(5)), 0.0);
    }

    #[test]
    fn scaled_identity_has_known_error() {
        let mut q = Mat::identity(3);
        q.scale(2.0); // Q^T Q = 4I, I - Q^T Q = -3I, frob = 3*sqrt(3)
        assert!((orthogonality_error(&q) - 3.0 * 3f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn exact_qr_has_tiny_errors() {
        let v = Mat::from_fn(30, 4, |i, j| ((i * 3 + j) as f64).sin());
        let f = householder_qr(&v);
        assert!(factorization_error(&v, &f.q, &f.r) < 1e-14);
        assert!(orthogonality_error(&f.q) < 1e-13);
        assert!(elementwise_error(&v, &f.q, &f.r) < 1e-9);
    }

    #[test]
    fn factorization_error_detects_mismatch() {
        let v = Mat::identity(3);
        let q = Mat::identity(3);
        let mut r = Mat::identity(3);
        r[(0, 0)] = 2.0; // QR = diag(2,1,1) != I
        assert!(factorization_error(&v, &q, &r) > 0.3);
    }

    #[test]
    fn elementwise_skips_zeros() {
        let mut v = Mat::zeros(2, 1);
        v[(0, 0)] = 1.0; // v[(1,0)] stays 0 and must be skipped
        let q = Mat::from_fn(2, 1, |i, _| if i == 0 { 1.0 } else { 0.5 });
        let r = Mat::identity(1);
        let e = elementwise_error(&v, &q, &r);
        assert!(e.is_finite());
        assert!(e.abs() < 1e-12); // only the (0,0) entry is compared
    }

    #[test]
    fn vec_inf_diff_basic() {
        assert_eq!(vec_inf_diff(&[1.0, 2.0], &[1.5, 2.0]), 0.5);
    }
}
