//! Householder QR factorization (LAPACK `xGEQRF`/`xORGQR` equivalents).
//!
//! CAQR (paper §V-E) computes a local Householder QR of each device's block
//! and a second QR of the stacked R-factors on the CPU; SVQR needs the QR of
//! the small matrix `Sigma^{1/2} U^T`. Both are served by [`householder_qr`].
//! Like the paper's implementation, we explicitly form the thin `Q`
//! (`xORGQR`), which doubles the flops but keeps the downstream interfaces
//! simple (the paper notes the same trade-off in §V-E footnote 6).

use crate::Mat;

/// Result of a thin QR factorization: `A = Q R` with `Q` (`m x k`) having
/// orthonormal columns and `R` (`k x k`) upper triangular, `k = min(m, n)`.
#[derive(Debug, Clone)]
pub struct QrFactors {
    /// Orthonormal factor, `m x min(m, n)`.
    pub q: Mat,
    /// Upper-triangular factor, `min(m, n) x n`.
    pub r: Mat,
}

/// Householder thin QR of `a` (`m x n`, `m >= n` typical but not required).
///
/// Deterministic, BLAS-1/2 bound — which is exactly why the paper finds
/// CAQR slower than the BLAS-3 CholQR on GPUs (Fig. 11c).
pub fn householder_qr(a: &Mat) -> QrFactors {
    let m = a.nrows();
    let n = a.ncols();
    let k = m.min(n);
    let mut work = a.clone();
    // Householder vectors stored below the diagonal of `work`; taus kept
    // separately. v_j has implicit 1 at position j.
    let mut taus = vec![0.0f64; k];

    for j in 0..k {
        // Build the reflector from work[j.., j].
        let (alpha, tau) = {
            let col = &work.col(j)[j..];
            let x0 = col[0];
            let xnorm = crate::blas1::nrm2(&col[1..]);
            if xnorm == 0.0 {
                (x0, 0.0)
            } else {
                let beta = -(x0.signum()) * (x0 * x0 + xnorm * xnorm).sqrt();
                let tau = (beta - x0) / beta;
                let scale = 1.0 / (x0 - beta);
                // scale the tail so v = [1; tail]
                let colm = &mut work.col_mut(j)[j + 1..];
                crate::blas1::scal(scale, colm);
                (beta, tau)
            }
        };
        taus[j] = tau;
        // Apply (I - tau v v^T) to the trailing columns.
        if tau != 0.0 {
            for c in j + 1..n {
                // w = v^T work[j.., c]
                let mut w = work[(j, c)];
                {
                    let vj = work.col(j)[j + 1..].to_vec();
                    let wc = &work.col(c)[j + 1..];
                    w += crate::blas1::dot(&vj, wc);
                }
                let tw = tau * w;
                work[(j, c)] -= tw;
                let vj = work.col(j)[j + 1..].to_vec();
                let wc = &mut work.col_mut(c)[j + 1..];
                crate::blas1::axpy(-tw, &vj, wc);
            }
        }
        work[(j, j)] = alpha;
    }

    // Extract R.
    let mut r = Mat::zeros(k, n);
    for j in 0..n {
        for i in 0..=j.min(k - 1) {
            r[(i, j)] = work[(i, j)];
        }
    }

    // Form thin Q by applying the reflectors to the k leading identity cols,
    // back to front (xORGQR).
    let mut q = Mat::zeros(m, k);
    for j in 0..k {
        q[(j, j)] = 1.0;
    }
    for j in (0..k).rev() {
        let tau = taus[j];
        if tau == 0.0 {
            continue;
        }
        let v: Vec<f64> = {
            let mut v = vec![0.0; m - j];
            v[0] = 1.0;
            v[1..].copy_from_slice(&work.col(j)[j + 1..]);
            v
        };
        for c in 0..k {
            let qc = &q.col(c)[j..];
            let w = crate::blas1::dot(&v, qc);
            let tw = tau * w;
            let qcm = &mut q.col_mut(c)[j..];
            crate::blas1::axpy(-tw, &v, qcm);
        }
    }

    // Normalize sign: make diagonal of R non-negative (flip Q columns to
    // match). This gives a unique factorization, convenient for tests and
    // for comparing TSQR variants.
    for j in 0..k {
        if r[(j, j)] < 0.0 {
            for c in j..n {
                r[(j, c)] = -r[(j, c)];
            }
            crate::blas1::scal(-1.0, q.col_mut(j));
        }
    }

    QrFactors { q, r }
}

/// Result of a column-pivoted (rank-revealing) QR: `A P = Q R` with `P`
/// the column permutation `perm` (`perm[j]` = original index of the j-th
/// factored column) and `R`'s diagonal non-increasing in magnitude.
#[derive(Debug, Clone)]
pub struct QrcpFactors {
    /// Orthonormal factor, `m x k`.
    pub q: Mat,
    /// Upper-triangular factor with |diag| non-increasing, `k x n`.
    pub r: Mat,
    /// Column permutation: factored column `j` is original column
    /// `perm[j]`.
    pub perm: Vec<usize>,
}

impl QrcpFactors {
    /// Numerical rank: the number of diagonal entries of `R` above
    /// `tol * |r_00|`.
    pub fn rank(&self, tol: f64) -> usize {
        let k = self.r.nrows().min(self.r.ncols());
        if k == 0 {
            return 0;
        }
        let r00 = self.r[(0, 0)].abs();
        if r00 == 0.0 {
            return 0;
        }
        (0..k).take_while(|&j| self.r[(j, j)].abs() > tol * r00).count()
    }
}

/// Householder QR with column pivoting (LAPACK `xGEQP3`-style, classic
/// Businger–Golub column-norm pivoting) — the rank-revealing
/// factorization the paper lists as future work for the orthogonalization
/// strategies (\[10\]). At each step the remaining column of largest
/// residual norm is swapped to the front; partial column norms are
/// downdated and refreshed when cancellation is detected.
pub fn householder_qrcp(a: &Mat) -> QrcpFactors {
    let n = a.ncols();
    let mut work = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();

    // residual column norms (squared) with downdating
    let mut colnorm: Vec<f64> = (0..n).map(|j| crate::blas1::dot(a.col(j), a.col(j))).collect();
    let orig_norm = colnorm.clone();

    let m = a.nrows();
    let k = m.min(n);
    let mut qcols = Mat::zeros(m, k);
    // accumulate Q by applying reflectors to identity at the end; store
    // reflectors in-place as in householder_qr
    let mut taus = vec![0.0f64; k];

    for j in 0..k {
        // pivot: remaining column with the largest residual norm
        let (pvt, _) = colnorm[j..]
            .iter()
            .enumerate()
            .fold((0usize, f64::MIN), |(bi, bv), (i, &v)| if v > bv { (i, v) } else { (bi, bv) });
        let pvt = j + pvt;
        if pvt != j {
            // swap columns j and pvt of work, and bookkeeping
            let cj = work.col_to_vec(j);
            let cp = work.col_to_vec(pvt);
            work.set_col(j, &cp);
            work.set_col(pvt, &cj);
            perm.swap(j, pvt);
            colnorm.swap(j, pvt);
        }

        // Householder reflector on work[j.., j]
        let (alpha, tau) = {
            let col = &work.col(j)[j..];
            let x0 = col[0];
            let xnorm = crate::blas1::nrm2(&col[1..]);
            if xnorm == 0.0 {
                (x0, 0.0)
            } else {
                let beta = -(x0.signum()) * (x0 * x0 + xnorm * xnorm).sqrt();
                let tau = (beta - x0) / beta;
                let scale = 1.0 / (x0 - beta);
                crate::blas1::scal(scale, &mut work.col_mut(j)[j + 1..]);
                (beta, tau)
            }
        };
        taus[j] = tau;
        if tau != 0.0 {
            for c in j + 1..n {
                let mut w = work[(j, c)];
                {
                    let vj = work.col(j)[j + 1..].to_vec();
                    let wc = &work.col(c)[j + 1..];
                    w += crate::blas1::dot(&vj, wc);
                }
                let tw = tau * w;
                work[(j, c)] -= tw;
                let vj = work.col(j)[j + 1..].to_vec();
                crate::blas1::axpy(-tw, &vj, &mut work.col_mut(c)[j + 1..]);
            }
        }
        work[(j, j)] = alpha;

        // downdate residual norms; refresh on cancellation (Businger-Golub)
        for c in j + 1..n {
            let rjc = work[(j, c)];
            colnorm[c] -= rjc * rjc;
            if colnorm[c] < 1e-12 * orig_norm[c].max(f64::MIN_POSITIVE) {
                let tail = &work.col(c)[j + 1..];
                colnorm[c] = crate::blas1::dot(tail, tail);
            }
        }
    }

    // extract R
    let mut r = Mat::zeros(k, n);
    for j in 0..n {
        for i in 0..=j.min(k - 1) {
            r[(i, j)] = work[(i, j)];
        }
    }
    // form thin Q
    for j in 0..k {
        qcols[(j, j)] = 1.0;
    }
    for j in (0..k).rev() {
        let tau = taus[j];
        if tau == 0.0 {
            continue;
        }
        let v: Vec<f64> = {
            let mut v = vec![0.0; m - j];
            v[0] = 1.0;
            v[1..].copy_from_slice(&work.col(j)[j + 1..]);
            v
        };
        for c in 0..k {
            let qc = &qcols.col(c)[j..];
            let w = crate::blas1::dot(&v, qc);
            let tw = tau * w;
            crate::blas1::axpy(-tw, &v, &mut qcols.col_mut(c)[j..]);
        }
    }
    // sign convention: R diagonal non-negative
    for j in 0..k {
        if r[(j, j)] < 0.0 {
            for c in j..n {
                r[(j, c)] = -r[(j, c)];
            }
            crate::blas1::scal(-1.0, qcols.col_mut(j));
        }
    }
    QrcpFactors { q: qcols, r, perm }
}

/// Dense inverse of a small square matrix via Householder QR
/// (`A^{-1} = R^{-1} Q^T`). Returns an error on numerical singularity.
/// Used by the block-Jacobi preconditioner's diagonal-block inversion.
pub fn invert_via_qr(a: &Mat) -> crate::Result<Mat> {
    let n = a.ncols();
    assert_eq!(a.nrows(), n, "inverse needs a square matrix");
    let f = householder_qr(a);
    let mut inv = Mat::zeros(n, n);
    let qt = f.q.transpose();
    for j in 0..n {
        let mut x = qt.col_to_vec(j).to_vec();
        // x currently holds row j of Q^T? careful: col j of Q^T = row j of Q.
        // We want column j of A^{-1} = R^{-1} (Q^T e_j) = R^{-1} * (Q^T)[:, j]
        // (Q^T)[:, j] is the j-th column of Q^T = j-th row of Q.
        crate::blas2::trsv_upper(&f.r, &mut x)?;
        inv.set_col(j, &x);
    }
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::{gemm_nn, gemm_tn};
    use crate::norms::orthogonality_error;

    fn tall(m: usize, n: usize, seed: u64) -> Mat {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
        Mat::from_fn(m, n, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
    }

    fn check_qr(a: &Mat) {
        let QrFactors { q, r } = householder_qr(a);
        // Q orthonormal
        assert!(orthogonality_error(&q) < 1e-13, "orth err {}", orthogonality_error(&q));
        // QR = A
        let mut qr = Mat::zeros(a.nrows(), a.ncols());
        gemm_nn(1.0, &q, &r, 0.0, &mut qr);
        for i in 0..a.nrows() {
            for j in 0..a.ncols() {
                assert!((qr[(i, j)] - a[(i, j)]).abs() < 1e-12 * a.max_abs().max(1.0));
            }
        }
        // R upper triangular with non-negative diagonal
        for j in 0..r.ncols() {
            for i in j + 1..r.nrows() {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
        for d in 0..r.nrows().min(r.ncols()) {
            assert!(r[(d, d)] >= 0.0);
        }
    }

    #[test]
    fn qr_tall_random() {
        check_qr(&tall(40, 7, 1));
        check_qr(&tall(100, 12, 2));
    }

    #[test]
    fn qr_square() {
        check_qr(&tall(8, 8, 3));
    }

    #[test]
    fn qr_single_column() {
        let a = tall(20, 1, 4);
        let f = householder_qr(&a);
        let norm = crate::blas1::nrm2(a.col(0));
        assert!((f.r[(0, 0)] - norm).abs() < 1e-13);
    }

    #[test]
    fn qr_of_orthogonal_is_identity_r() {
        let a = tall(30, 5, 5);
        let f1 = householder_qr(&a);
        let f2 = householder_qr(&f1.q);
        for i in 0..5 {
            for j in 0..5 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((f2.r[(i, j)] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn qr_rank_deficient_column() {
        // second column is 2x the first: R[1,1] ~ 0, factorization still valid
        let mut a = tall(15, 2, 6);
        let c0 = a.col_to_vec(0);
        for (i, v) in c0.iter().enumerate() {
            a[(i, 1)] = 2.0 * v;
        }
        let QrFactors { q, r } = householder_qr(&a);
        assert!(r[(1, 1)].abs() < 1e-12);
        let mut qr = Mat::zeros(15, 2);
        gemm_nn(1.0, &q, &r, 0.0, &mut qr);
        for i in 0..15 {
            for j in 0..2 {
                assert!((qr[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn invert_via_qr_roundtrip() {
        let a = Mat::from_fn(5, 5, |i, j| {
            if i == j {
                4.0 + i as f64
            } else {
                ((i * 3 + j * 7) % 5) as f64 * 0.3
            }
        });
        let inv = invert_via_qr(&a).unwrap();
        let mut prod = Mat::zeros(5, 5);
        gemm_nn(1.0, &a, &inv, 0.0, &mut prod);
        for i in 0..5 {
            for j in 0..5 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - want).abs() < 1e-11, "({i},{j}) = {}", prod[(i, j)]);
            }
        }
    }

    #[test]
    fn invert_singular_fails() {
        let a = Mat::zeros(3, 3);
        assert!(invert_via_qr(&a).is_err());
    }

    #[test]
    fn qrcp_reconstructs_with_permutation() {
        let a = tall(40, 6, 17);
        let f = householder_qrcp(&a);
        assert!(orthogonality_error(&f.q) < 1e-12);
        // A[:, perm[j]] == (Q R)[:, j]
        let mut qr = Mat::zeros(40, 6);
        gemm_nn(1.0, &f.q, &f.r, 0.0, &mut qr);
        for j in 0..6 {
            for i in 0..40 {
                assert!((qr[(i, j)] - a[(i, f.perm[j])]).abs() < 1e-11);
            }
        }
        // diagonal magnitudes non-increasing
        for j in 1..6 {
            assert!(f.r[(j, j)].abs() <= f.r[(j - 1, j - 1)].abs() + 1e-10);
        }
        assert_eq!(f.rank(1e-10), 6);
    }

    #[test]
    fn qrcp_reveals_rank_deficiency() {
        // 3 independent columns + 2 linear combinations: rank 3
        let base = tall(30, 3, 5);
        let mut a = Mat::zeros(30, 5);
        for j in 0..3 {
            a.set_col(j, base.col(j));
        }
        for i in 0..30 {
            a[(i, 3)] = base[(i, 0)] + 2.0 * base[(i, 1)];
            a[(i, 4)] = base[(i, 2)] - base[(i, 0)];
        }
        let f = householder_qrcp(&a);
        assert_eq!(f.rank(1e-10), 3, "diag: {:?}", (0..5).map(|j| f.r[(j, j)]).collect::<Vec<_>>());
    }

    #[test]
    fn qrcp_pivots_large_column_first() {
        let mut a = tall(20, 3, 9);
        crate::blas1::scal(100.0, a.col_mut(2));
        let f = householder_qrcp(&a);
        assert_eq!(f.perm[0], 2, "largest column must be pivoted first");
    }

    #[test]
    fn stacked_r_qr_matches_direct_gram() {
        // CAQR identity check: QR of [R1; R2] where Ri are local R-factors
        // gives the same R (up to sign, fixed by our convention) as QR of
        // the stacked matrix.
        let a1 = tall(25, 4, 7);
        let a2 = tall(31, 4, 8);
        let mut stacked = Mat::zeros(56, 4);
        for j in 0..4 {
            stacked.col_mut(j)[..25].copy_from_slice(a1.col(j));
            stacked.col_mut(j)[25..].copy_from_slice(a2.col(j));
        }
        let r_direct = householder_qr(&stacked).r;

        let f1 = householder_qr(&a1);
        let f2 = householder_qr(&a2);
        let mut rr = Mat::zeros(8, 4);
        for j in 0..4 {
            rr.col_mut(j)[..4].copy_from_slice(f1.r.col(j));
            rr.col_mut(j)[4..].copy_from_slice(f2.r.col(j));
        }
        let r_tree = householder_qr(&rr).r;
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    (r_direct[(i, j)] - r_tree[(i, j)]).abs() < 1e-11,
                    "mismatch at ({i},{j}): {} vs {}",
                    r_direct[(i, j)],
                    r_tree[(i, j)]
                );
            }
        }
        // silence unused warning for gemm_tn import in this test module
        let mut g = Mat::zeros(4, 4);
        gemm_tn(1.0, &a1, &a1, 0.0, &mut g);
    }
}
