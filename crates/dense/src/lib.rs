//! # ca-dense — dense linear-algebra substrate
//!
//! A small, self-contained dense linear-algebra library written for the
//! CA-GMRES reproduction. It provides everything the paper's CPU side needs
//! and everything the simulated GPU kernels compute with:
//!
//! * a column-major matrix type ([`Mat`]) matching LAPACK storage conventions,
//! * BLAS level 1/2/3 routines ([`blas1`], [`blas2`], [`blas3`]),
//! * Cholesky factorization with definiteness-failure reporting ([`chol`]) —
//!   CholQR relies on observing exactly where the factorization breaks down,
//! * Householder QR ([`qr`]) used by CAQR's local factorizations,
//! * a symmetric Jacobi eigensolver ([`jacobi`]) providing the SVD of the
//!   Gram matrix for SVQR (including the diagonal-scaling stabilization),
//! * Hessenberg utilities ([`hessenberg`]): Givens-rotation least squares
//!   (the GMRES update) and eigenvalues of small upper-Hessenberg matrices
//!   via the shifted QR algorithm (the Newton-basis shifts),
//! * Leja ordering of shifts ([`leja`]),
//! * norm and orthogonality-error helpers ([`norms`]).
//!
//! All routines are written in safe Rust and validated against naive
//! reference implementations in the test suite.
//!
//! ```
//! use ca_dense::{blas3, chol, qr, Mat};
//!
//! // a tall-skinny block, its Gram matrix, and both QR routes
//! let v = Mat::from_fn(100, 4, |i, j| ((i * (j + 2)) as f64 * 0.01).sin());
//! let mut gram = Mat::zeros(4, 4);
//! blas3::syrk_tn(1.0, &v, 0.0, &mut gram);
//! let r_chol = chol::cholesky_upper(&gram).unwrap();   // CholQR's R
//! let r_house = qr::householder_qr(&v).r;              // Householder R
//! for j in 0..4 {
//!     assert!((r_chol[(j, j)] - r_house[(j, j)]).abs() < 1e-8);
//! }
//! ```

// Numeric kernels index several parallel slices at once; iterator
// rewrites would obscure the stride arithmetic the cost model mirrors.
#![allow(clippy::needless_range_loop)]

pub mod blas1;
pub mod blas2;
pub mod blas3;
pub mod chol;
pub mod hessenberg;
pub mod jacobi;
pub mod leja;
pub mod mat;
pub mod norms;
pub mod qr;

pub use mat::Mat;

/// Errors reported by dense factorizations.
#[derive(Debug, Clone, PartialEq)]
pub enum DenseError {
    /// Cholesky hit a non-positive pivot at the given index (0-based).
    /// The value is the offending pivot so callers can decide whether the
    /// matrix was merely semi-definite or badly indefinite.
    NotPositiveDefinite { index: usize, pivot: f64 },
    /// An iterative eigensolver/QR algorithm failed to converge within its
    /// iteration budget.
    NoConvergence { iterations: usize },
    /// A triangular solve encountered an exactly-zero diagonal entry.
    SingularTriangular { index: usize },
    /// Mismatched dimensions were passed to a routine.
    DimensionMismatch { expected: String, got: String },
}

impl std::fmt::Display for DenseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DenseError::NotPositiveDefinite { index, pivot } => {
                write!(f, "matrix not positive definite: pivot {pivot:e} at index {index}")
            }
            DenseError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
            DenseError::SingularTriangular { index } => {
                write!(f, "singular triangular factor: zero diagonal at index {index}")
            }
            DenseError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for DenseError {}

/// Convenient result alias for dense routines.
pub type Result<T> = std::result::Result<T, DenseError>;
