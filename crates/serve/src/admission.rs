//! Admission control: the `ca-tune` planner consulted once per
//! `(matrix, device-count)` class, plus start-time-fair-queueing tags.
//!
//! Every job class is planned at most once per device count — the
//! [`Candidate::label`]-stable planner output is cached under the
//! service's own matrix key — and the cached prediction prices both the
//! queue (ETA for deadline-aware ordering) and the pool (per-device
//! memory footprint for the residency manager). The simulated cost of a
//! cache miss is charged to the dispatching slice's host clock by the
//! scheduler, not here: this module never touches an executor.

use std::collections::BTreeMap;

use ca_gpusim::{KernelConfig, PerfModel};
use ca_sparse::Csr;
use ca_tune::plan::{Candidate, CandidateSpace, Planner};

/// Cached planner verdict for one `(matrix, device-count)` job class.
#[derive(Debug, Clone)]
pub struct CachedAdmission {
    /// The winning configuration at this device count.
    pub cand: Candidate,
    /// Predicted time of one CA restart cycle, seconds.
    pub predicted_cycle_s: f64,
    /// Planned footprint, bytes per device (ceil of the planner's
    /// estimate), used for proactive eviction before a cold build.
    pub mem_bytes_per_dev: Vec<u64>,
}

/// Planner front-end with a per-`(matrix key, ndev)` cache and a
/// per-matrix expected-cycle-count EWMA (the ETA multiplier).
#[derive(Debug)]
pub struct AdmissionCache {
    space: CandidateSpace,
    model: PerfModel,
    kc: KernelConfig,
    m: usize,
    /// `None`: every candidate at that device count was pruned (e.g. the
    /// operator cannot fit) — the job class is rejected there.
    cache: BTreeMap<(String, usize), Option<CachedAdmission>>,
    ewma_cycles: BTreeMap<String, f64>,
    alpha: f64,
    init_cycles: f64,
    /// Planner invocations (cache misses) so far.
    pub misses: u64,
}

impl AdmissionCache {
    /// A cache planning with `space` (its `ndevs` field is ignored) for
    /// restart length `m` on the given machine model.
    #[must_use]
    pub fn new(
        space: CandidateSpace,
        model: PerfModel,
        kc: KernelConfig,
        m: usize,
        alpha: f64,
        init_cycles: f64,
    ) -> Self {
        Self {
            space,
            model,
            kc,
            m,
            cache: BTreeMap::new(),
            ewma_cycles: BTreeMap::new(),
            alpha,
            init_cycles,
            misses: 0,
        }
    }

    /// The cached verdict for `(key, ndev)`, planning on first use.
    /// Returns the verdict and whether this call missed the cache (the
    /// scheduler charges simulated planning time only then).
    pub fn lookup(&mut self, key: &str, a: &Csr, ndev: usize) -> (Option<&CachedAdmission>, bool) {
        let k = (key.to_string(), ndev);
        let mut miss = false;
        if !self.cache.contains_key(&k) {
            miss = true;
            self.misses += 1;
            let planner = Planner::new(a, self.m, self.model.clone(), self.kc);
            let ests = ca_tune::admission_estimates(&planner, &self.space, &[ndev]);
            let verdict = ests.into_iter().next().map(|e| CachedAdmission {
                cand: e.cand,
                predicted_cycle_s: e.predicted_cycle_s,
                mem_bytes_per_dev: e.mem_bytes_per_dev.iter().map(|&b| b.ceil() as u64).collect(),
            });
            self.cache.insert(k.clone(), verdict);
        }
        (self.cache[&k].as_ref(), miss)
    }

    /// Expected cycles for a solve of `key` (EWMA of observed restart
    /// counts, seeded with `init_cycles`).
    #[must_use]
    pub fn expected_cycles(&self, key: &str) -> f64 {
        self.ewma_cycles.get(key).copied().unwrap_or(self.init_cycles)
    }

    /// Fold an observed restart count into the matrix's cycle forecast.
    pub fn observe_cycles(&mut self, key: &str, cycles: usize) {
        let c = cycles.max(1) as f64;
        let prev = self.expected_cycles(key);
        self.ewma_cycles.insert(key.to_string(), (1.0 - self.alpha) * prev + self.alpha * c);
    }

    /// ETA for one solve of `key` at `ndev` devices: predicted cycle
    /// time times the cycle forecast. `None` if the class is infeasible
    /// there. Second component: whether the planner ran (cache miss).
    pub fn eta_s(&mut self, key: &str, a: &Csr, ndev: usize) -> (Option<f64>, bool) {
        let cycles = self.expected_cycles(key);
        let (v, miss) = self.lookup(key, a, ndev);
        (v.map(|c| c.predicted_cycle_s * cycles), miss)
    }
}

/// Start-time fair queueing across tenants: each job gets a virtual
/// start tag `max(V, tenant's last finish)` and a finish tag
/// `start + cost / weight`; the queue serves ascending finish tags and
/// the global virtual time `V` advances to the started job's tag. A
/// backlogged heavy tenant cannot starve light ones — its finish tags
/// run ahead of `V` in proportion to its usage over its weight.
#[derive(Debug)]
pub struct FairQueue {
    /// Global virtual time.
    pub vtime: f64,
    weights: BTreeMap<String, f64>,
    vfinish: BTreeMap<String, f64>,
}

impl FairQueue {
    /// Weights default to 1.0 for tenants absent from the map.
    #[must_use]
    pub fn new(weights: BTreeMap<String, f64>) -> Self {
        Self { vtime: 0.0, weights, vfinish: BTreeMap::new() }
    }

    /// Tag a job of `tenant` with service cost `cost_s` (its ETA):
    /// returns `(vstart, vfinish)` and advances the tenant's own finish
    /// frontier. Called once per job, in arrival order.
    pub fn tag(&mut self, tenant: &str, cost_s: f64) -> (f64, f64) {
        let w = self.weights.get(tenant).copied().unwrap_or(1.0).max(f64::MIN_POSITIVE);
        let last = self.vfinish.get(tenant).copied().unwrap_or(0.0);
        let vstart = self.vtime.max(last);
        let vfinish = vstart + cost_s.max(0.0) / w;
        self.vfinish.insert(tenant.to_string(), vfinish);
        (vstart, vfinish)
    }

    /// Advance virtual time to a dispatched job's start tag.
    pub fn on_dispatch(&mut self, vstart: f64) {
        self.vtime = self.vtime.max(vstart);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_queue_interleaves_unequal_tenants() {
        let mut fq = FairQueue::new(BTreeMap::from([("heavy".to_string(), 1.0)]));
        // heavy submits 4 jobs at once, light one job slightly later; all
        // cost 1s. Light's finish tag must sort ahead of heavy's 2nd job.
        let tags: Vec<(f64, f64)> = (0..4).map(|_| fq.tag("heavy", 1.0)).collect();
        let light = fq.tag("light", 1.0);
        assert_eq!(tags[0].1, 1.0);
        assert_eq!(tags[3].1, 4.0);
        assert!(light.1 < tags[1].1, "light {light:?} vs heavy#2 {:?}", tags[1]);
        // A weight of 2 halves the virtual cost.
        let mut fq2 = FairQueue::new(BTreeMap::from([("a".to_string(), 2.0)]));
        assert_eq!(fq2.tag("a", 1.0).1, 0.5);
    }

    #[test]
    fn vtime_monotone_under_dispatch() {
        let mut fq = FairQueue::new(BTreeMap::new());
        let (s1, _) = fq.tag("t", 1.0);
        fq.on_dispatch(s1);
        let v1 = fq.vtime;
        let (s2, _) = fq.tag("t", 1.0);
        fq.on_dispatch(s2);
        assert!(fq.vtime >= v1);
        fq.on_dispatch(0.0); // never moves backwards
        assert!(fq.vtime >= v1);
    }

    #[test]
    fn admission_cache_plans_once_per_class() {
        let a = ca_sparse::gen::laplace2d(24, 24);
        let mut cache = AdmissionCache::new(
            CandidateSpace::smoke(1),
            PerfModel::default(),
            KernelConfig::default(),
            20,
            0.3,
            4.0,
        );
        let (v1, miss1) = cache.lookup("lap", &a, 2);
        assert!(miss1 && v1.is_some());
        let cycle = cache.cache[&("lap".to_string(), 2)].as_ref().unwrap().predicted_cycle_s;
        let (v2, miss2) = cache.lookup("lap", &a, 2);
        assert!(!miss2);
        assert_eq!(v2.unwrap().predicted_cycle_s.to_bits(), cycle.to_bits());
        assert_eq!(cache.misses, 1);
        // ETA scales with the cycle forecast.
        let (eta0, _) = cache.eta_s("lap", &a, 2);
        assert_eq!(eta0.unwrap().to_bits(), (cycle * 4.0).to_bits());
        cache.observe_cycles("lap", 10);
        let (eta1, miss3) = cache.eta_s("lap", &a, 2);
        assert!(!miss3);
        assert!(eta1.unwrap() > eta0.unwrap());
    }
}
