//! # ca-serve — multi-tenant solver-as-a-service over the shared GPU pool
//!
//! The repo's solver stack answers "how fast is one CA-GMRES solve on
//! `d` GPUs?". This crate answers the question a shared installation
//! actually faces: hundreds of tenants submitting solve requests against
//! a small set of operators, all contending for the same devices. It is
//! a deterministic, simulated-time service front-end in four pieces:
//!
//! * **Admission** ([`admission`]) — every `(matrix, device-count)` job
//!   class is planned once through the `ca-tune` planner; the cached
//!   prediction prices the queue (cycle-time × expected-cycles ETA for
//!   deadline-aware ordering) and the pool (per-device memory footprint
//!   for eviction decisions). Tenants share the pool under start-time
//!   fair queueing with configurable weights.
//! * **Residency** ([`residency`]) — finished solves leave their
//!   operator (basis panel, MPK plans, ABFT checksums) resident on the
//!   slice; follow-up jobs on the same matrix skip slice staging
//!   entirely and batch right-hand sides through one aggregated upload.
//!   Cold builds evict least-recently-used operators under the
//!   simulator's byte-accurate device-memory accounting; an in-flight
//!   matrix is pinned and never evicted.
//! * **Scheduling** ([`scheduler`]) — the pool is partitioned into
//!   slices, each an independent event-driven executor with its own
//!   clocks; the dispatcher always serves the slice whose host clock is
//!   lowest, so one tenant's device tail (MPK still draining the queues)
//!   overlaps the next tenant's host-side staging — backfill the
//!   dispatcher detects and counts. Fault tolerance passes through
//!   per job: a device loss degrades the slice it happened on and the
//!   jobs resident there, nothing else.
//! * **Observability** ([`metrics`], [`slo`], plus `ca-obs`
//!   integration) — queue depth, per-slice utilization, p50/p99
//!   time-to-solution, eviction / backfill / warm-hit counters, and an
//!   order-sensitive FNV digest that CI diffs across thread counts.
//!   [`slo::SloMonitor`] keeps per-tenant books (rolling deadline-hit
//!   rate with edge-triggered `serve.slo_burn` alerts, TTS and
//!   queue-delay quantile histograms) and lands one [`slo::TenantSlo`]
//!   row per tenant in the report. Long runs stream their spans through
//!   [`ca_obs::export::StreamingTrace`] instead of accumulating.
//!
//! Everything is bit-deterministic in (arrival seed, configuration):
//! scheduling state lives in `BTreeMap`s and logical counters, every
//! ordering breaks ties on job id, and no decision reads wall-clock
//! time or thread count.

pub mod admission;
pub mod job;
pub mod metrics;
pub mod residency;
pub mod scheduler;
pub mod slo;

use std::collections::BTreeMap;

use ca_gmres::ft::FtConfig;
use ca_gmres::prelude::*;
use ca_gpusim::{FaultPlan, KernelConfig, PerfModel, Schedule};
use ca_tune::CandidateSpace;

pub use admission::{AdmissionCache, CachedAdmission, FairQueue};
pub use job::{open_loop_arrivals, ArrivalSpec, JobRequest};
pub use metrics::{hash_solution, percentile, JobRecord, JobStatus, ServiceReport};
pub use residency::{Lru, Residency};
pub use scheduler::Service;
pub use slo::{SloConfig, SloMonitor, TenantSlo};

/// Queue discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Start-time fair queueing across tenants, with a deadline-urgency
    /// bucket and residency-affinity tie-breaking.
    Sfq,
    /// Strict arrival order — the naive baseline arm.
    Fifo,
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Device counts of the pool slices. Each slice is an independent
    /// executor; a job runs on exactly one slice.
    pub slices: Vec<usize>,
    /// Machine model every slice is built from.
    pub model: PerfModel,
    /// Kernel configuration every slice is built from.
    pub kernel_config: KernelConfig,
    /// Executor schedule (default [`Schedule::EventDriven`] — backfill
    /// needs device tails to outlive the host's view of a solve).
    pub schedule: Schedule,
    /// Per-job template: restart length, iteration caps, and all
    /// fault-tolerance knobs come from here; `s`, basis, kernel, and
    /// TSQR choice are overridden by the admission plan, `rtol` by the
    /// job.
    pub base: FtConfig,
    /// Queue discipline.
    pub policy: Policy,
    /// Keep operators warm between same-matrix jobs.
    pub residency: bool,
    /// Max jobs per multi-RHS batch (1 disables batching).
    pub batch_max: usize,
    /// Planner grid for admission (its `ndevs` field is ignored; each
    /// lookup restricts to the slice's device count).
    pub admission_space: CandidateSpace,
    /// Simulated host seconds charged per planner invocation (admission
    /// cache miss). Never leaks into device clocks or solver stats.
    pub admission_cost_s: f64,
    /// Simulated host seconds charged per dispatch.
    pub dispatch_cost_s: f64,
    /// Residency-affinity window: a warm job may be served before the
    /// fair-queue head if its finish tag is within `(1 + slack)` of it.
    pub affinity_slack: f64,
    /// Fair-queueing weights per tenant (absent tenants weigh 1.0).
    pub tenant_weights: BTreeMap<String, f64>,
    /// Keep full solution vectors in [`JobRecord::x`] (tests; heavy).
    pub keep_solutions: bool,
    /// EWMA factor for the expected-cycles forecast.
    pub ewma_alpha: f64,
    /// Cold-start expected cycles (ETA multiplier before observations).
    pub expected_cycles_init: f64,
    /// Fault plans installed per slice index at pool construction
    /// (chaos / degradation studies).
    pub fault_plans: Vec<(usize, FaultPlan)>,
    /// Per-tenant SLO objective and burn-alert window.
    pub slo: slo::SloConfig,
    /// Record per-kernel device traces on every slice and ingest them
    /// into the ambient `ca-obs` session (when one is active) at the end
    /// of the run — `kernel.*` / `copy.*` metrics over the whole stream,
    /// the feed for trace-driven calibration. Purely observational:
    /// simulated clocks and results are bit-identical either way.
    pub record_kernel_traces: bool,
}

impl ServeConfig {
    /// Full-featured service defaults on the given slice partition.
    #[must_use]
    pub fn new(slices: Vec<usize>) -> Self {
        assert!(!slices.is_empty() && slices.iter().all(|&d| d > 0));
        Self {
            slices,
            model: PerfModel::default(),
            kernel_config: KernelConfig::default(),
            schedule: Schedule::EventDriven,
            base: FtConfig::default(),
            policy: Policy::Sfq,
            residency: true,
            batch_max: 8,
            admission_space: Self::default_admission_space(),
            admission_cost_s: 100e-6,
            dispatch_cost_s: 20e-6,
            affinity_slack: 0.25,
            tenant_weights: BTreeMap::new(),
            keep_solutions: false,
            ewma_alpha: 0.3,
            expected_cycles_init: 4.0,
            fault_plans: Vec::new(),
            slo: slo::SloConfig::default(),
            record_kernel_traces: false,
        }
    }

    /// The baseline arm: the whole pool is one slice, jobs run strictly
    /// in arrival order, one at a time, cold every time — no residency,
    /// no batching. What `ext_service` compares the scheduler against.
    #[must_use]
    pub fn naive_fifo(pool_devices: usize) -> Self {
        Self {
            policy: Policy::Fifo,
            residency: false,
            batch_max: 1,
            ..Self::new(vec![pool_devices])
        }
    }

    /// A small admission grid with an SpMV fallback, so a class whose
    /// MPK candidates are all pruned still admits.
    #[must_use]
    pub fn default_admission_space() -> CandidateSpace {
        CandidateSpace {
            s_values: vec![2, 5, 10],
            kernels: vec![KernelMode::Mpk, KernelMode::Spmv],
            tsqrs: vec![TsqrKind::Cgs, TsqrKind::CholQr],
            ..CandidateSpace::smoke(1)
        }
    }
}
