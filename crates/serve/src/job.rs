//! Job requests and the seeded open-loop arrival process.

use ca_chaos::schedule::SplitMix64;

/// One solve request submitted to the service.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Unique, monotonically increasing id (ties in every ordering break
    /// on it, which is what makes the scheduler deterministic).
    pub id: u64,
    /// Tenant the job bills to (weighted-fair queueing key).
    pub tenant: String,
    /// Key into the service's matrix pool.
    pub matrix: String,
    /// Right-hand side (length must match the matrix).
    pub rhs: Vec<f64>,
    /// Relative residual tolerance.
    pub rtol: f64,
    /// Simulated arrival time, seconds. The scheduler never starts a job
    /// before this.
    pub arrival_s: f64,
    /// Absolute simulated deadline; a queued job whose ETA overruns it is
    /// escalated to the urgent bucket. `None`: best-effort.
    pub deadline_s: Option<f64>,
}

/// Parameters of [`open_loop_arrivals`].
#[derive(Debug, Clone)]
pub struct ArrivalSpec {
    /// RNG seed — the `arrival_seed` recorded in bench envelopes.
    pub seed: u64,
    /// Number of jobs to generate.
    pub jobs: usize,
    /// Offered load, jobs per simulated second (the rate of the Poisson
    /// process; exponential inter-arrival times).
    pub rate_jobs_per_s: f64,
    /// Tenant names to draw from (uniformly).
    pub tenants: Vec<String>,
    /// Matrix keys to draw from (uniformly), with their row counts for
    /// RHS generation.
    pub matrices: Vec<(String, usize)>,
    /// Solve tolerance for every job.
    pub rtol: f64,
    /// Fraction of jobs that carry a deadline (in `[0, 1]`).
    pub deadline_fraction: f64,
    /// Deadline headroom: `deadline = arrival + headroom_s`, drawn
    /// uniformly from this range for deadline-carrying jobs.
    pub deadline_headroom_s: (f64, f64),
}

/// Generate a seeded open-loop arrival stream: job `i` arrives after an
/// exponential gap at the offered rate, independent of service progress
/// (arrivals do not wait for completions, so driving the rate past the
/// pool's capacity saturates the queue — the regime `ext_service`
/// measures). Deterministic in `spec.seed`; RHS vectors are drawn in
/// `[-1, 1)` per entry from the same stream.
#[must_use]
pub fn open_loop_arrivals(spec: &ArrivalSpec) -> Vec<JobRequest> {
    assert!(!spec.tenants.is_empty() && !spec.matrices.is_empty());
    assert!(spec.rate_jobs_per_s > 0.0);
    let mut g = SplitMix64::new(spec.seed);
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(spec.jobs);
    for id in 0..spec.jobs as u64 {
        // Exponential inter-arrival: -ln(1 - u) / rate, u in [0, 1).
        let u = g.in_range(0.0, 1.0);
        t += -(1.0 - u).ln() / spec.rate_jobs_per_s;
        let tenant = spec.tenants[g.below(spec.tenants.len() as u64) as usize].clone();
        let (matrix, n) = spec.matrices[g.below(spec.matrices.len() as u64) as usize].clone();
        let rhs: Vec<f64> = (0..n).map(|_| g.in_range(-1.0, 1.0)).collect();
        let deadline_s = (g.in_range(0.0, 1.0) < spec.deadline_fraction)
            .then(|| t + g.in_range(spec.deadline_headroom_s.0, spec.deadline_headroom_s.1));
        out.push(JobRequest { id, tenant, matrix, rhs, rtol: spec.rtol, arrival_s: t, deadline_s });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(seed: u64) -> ArrivalSpec {
        ArrivalSpec {
            seed,
            jobs: 200,
            rate_jobs_per_s: 50.0,
            tenants: vec!["a".into(), "b".into(), "c".into()],
            matrices: vec![("m0".into(), 64), ("m1".into(), 100)],
            rtol: 1e-8,
            deadline_fraction: 0.25,
            deadline_headroom_s: (0.05, 0.2),
        }
    }

    #[test]
    fn arrivals_are_seed_deterministic_and_monotone() {
        let a = open_loop_arrivals(&spec(7));
        let b = open_loop_arrivals(&spec(7));
        assert_eq!(a.len(), 200);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.tenant, y.tenant);
            assert_eq!(x.matrix, y.matrix);
            assert_eq!(x.arrival_s.to_bits(), y.arrival_s.to_bits());
            assert_eq!(x.rhs, y.rhs);
            assert_eq!(x.deadline_s.map(f64::to_bits), y.deadline_s.map(f64::to_bits));
        }
        for w in a.windows(2) {
            assert!(w[1].arrival_s >= w[0].arrival_s);
        }
        let c = open_loop_arrivals(&spec(8));
        assert!(a.iter().zip(&c).any(|(x, y)| x.arrival_s != y.arrival_s));
    }

    #[test]
    fn rate_controls_mean_gap() {
        let fast = open_loop_arrivals(&ArrivalSpec { rate_jobs_per_s: 500.0, ..spec(3) });
        let slow = open_loop_arrivals(&ArrivalSpec { rate_jobs_per_s: 5.0, ..spec(3) });
        assert!(fast.last().unwrap().arrival_s < slow.last().unwrap().arrival_s / 10.0);
        let deadlines = fast.iter().filter(|j| j.deadline_s.is_some()).count();
        assert!(deadlines > 10 && deadlines < 190, "{deadlines}");
        for j in &fast {
            if let Some(d) = j.deadline_s {
                assert!(d > j.arrival_s);
            }
            assert!(j.rhs.iter().all(|v| (-1.0..1.0).contains(v)));
        }
    }
}
