//! Operator residency: which matrices stay warm on a pool slice, and
//! who gets evicted when a cold build needs room.
//!
//! The LRU policy itself is a small generic structure ([`Lru`]) so its
//! invariants — eviction strictly in least-recently-used order, a
//! pinned (in-flight) key is never evicted — are property-testable
//! without building real device state. [`Residency`] instantiates it
//! over [`ca_gmres::ft::ResidentSystem`] and adds the two lifecycle
//! hazards the simulator makes real: releasing an evicted operator
//! returns its bytes to the device allocator, and an executor rebuild
//! (device-loss recovery) invalidates every held allocation, after
//! which entries must be *dropped*, not released.

use std::collections::BTreeMap;

use ca_gmres::ft::ResidentSystem;
use ca_gpusim::MultiGpu;

/// Generic keyed LRU with pinning. Recency is a logical counter stamped
/// on insert and touch, so behavior is independent of wall-clock and of
/// simulated time.
#[derive(Debug)]
pub struct Lru<T> {
    entries: BTreeMap<String, (T, u64)>,
    stamp: u64,
}

impl<T> Default for Lru<T> {
    fn default() -> Self {
        Self { entries: BTreeMap::new(), stamp: 0 }
    }
}

impl<T> Lru<T> {
    fn tick(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }

    /// Insert (or replace) `key`, stamping it most recently used.
    /// Returns the displaced payload when replacing.
    pub fn insert(&mut self, key: &str, value: T) -> Option<T> {
        let s = self.tick();
        self.entries.insert(key.to_string(), (value, s)).map(|(v, _)| v)
    }

    /// Remove and return `key`'s payload (the caller takes ownership for
    /// the duration of a solve and re-inserts the refreshed state).
    pub fn take(&mut self, key: &str) -> Option<T> {
        self.entries.remove(key).map(|(v, _)| v)
    }

    /// Re-stamp `key` as most recently used.
    pub fn touch(&mut self, key: &str) {
        let s = self.tick();
        if let Some(e) = self.entries.get_mut(key) {
            e.1 = s;
        }
    }

    /// Evict the least-recently-used entry, never the pinned key.
    /// Returns `None` when nothing is evictable.
    pub fn evict_lru(&mut self, pinned: &str) -> Option<(String, T)> {
        let victim = self
            .entries
            .iter()
            .filter(|(k, _)| k.as_str() != pinned)
            .min_by_key(|(_, (_, s))| *s)
            .map(|(k, _)| k.clone())?;
        self.entries.remove(&victim).map(|(v, _)| (victim.clone(), v))
    }

    /// Whether `key` is resident.
    #[must_use]
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Resident entry count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop every entry *without* giving the caller a chance to release
    /// device allocations — for the executor-rebuild path where the held
    /// handles are already stale.
    pub fn clear_stale(&mut self) {
        self.entries.clear();
    }

    /// Drain every entry, handing payloads back for orderly release.
    pub fn drain(&mut self) -> Vec<(String, T)> {
        std::mem::take(&mut self.entries).into_iter().map(|(k, (v, _))| (k, v)).collect()
    }
}

/// Warm-operator store for one pool slice.
#[derive(Debug, Default)]
pub struct Residency {
    lru: Lru<ResidentSystem>,
    /// Operators evicted to make room (each one released its bytes).
    pub evictions: u64,
}

impl Residency {
    /// Take `key`'s warm state for a solve (ownership passes to
    /// [`ca_gmres::ft::ca_gmres_ft_session`]).
    pub fn take(&mut self, key: &str) -> Option<ResidentSystem> {
        self.lru.take(key)
    }

    /// Whether `key` is warm on this slice.
    #[must_use]
    pub fn contains(&self, key: &str) -> bool {
        self.lru.contains(key)
    }

    /// Resident operator count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// Whether no operators are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Park a refreshed operator under `key` (most recently used). A
    /// displaced duplicate is released.
    pub fn park(&mut self, mg: &mut MultiGpu, key: &str, sys: ResidentSystem) {
        if let Some(old) = self.lru.insert(key, sys) {
            old.release(mg);
        }
    }

    /// Evict least-recently-used operators (never `pinned`) until every
    /// device can fit `need_bytes_per_dev` more, or nothing evictable
    /// remains. Returns how many operators were evicted; their bytes are
    /// returned to the allocator immediately.
    pub fn make_room(
        &mut self,
        mg: &mut MultiGpu,
        pinned: &str,
        need_bytes_per_dev: &[u64],
    ) -> u64 {
        let fits = |mg: &MultiGpu| {
            (0..mg.n_gpus()).all(|d| {
                let need = need_bytes_per_dev.get(d).copied().unwrap_or(0) as usize;
                mg.device(d).mem_used() + need <= mg.model().dev_mem_capacity
            })
        };
        let mut evicted = 0;
        while !fits(mg) {
            match self.lru.evict_lru(pinned) {
                Some((_, sys)) => {
                    sys.release(mg);
                    evicted += 1;
                }
                None => break,
            }
        }
        self.evictions += evicted;
        evicted
    }

    /// Forget every operator without releasing: the executor was rebuilt
    /// (device-loss recovery) and the held allocations no longer exist.
    pub fn clear_stale(&mut self) {
        self.lru.clear_stale();
    }

    /// Release every operator in key order (service shutdown).
    pub fn release_all(&mut self, mg: &mut MultiGpu) {
        for (_, sys) in self.lru.drain() {
            sys.release(mg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lru_evicts_in_recency_order_and_respects_pins() {
        let mut lru: Lru<u32> = Lru::default();
        lru.insert("a", 1);
        lru.insert("b", 2);
        lru.insert("c", 3);
        lru.touch("a"); // recency now b < c < a
        assert_eq!(lru.evict_lru("z").map(|(k, _)| k).as_deref(), Some("b"));
        assert_eq!(lru.evict_lru("c").map(|(k, _)| k).as_deref(), Some("a"));
        // Only the pinned key is left: nothing evictable.
        assert!(lru.evict_lru("c").is_none());
        assert!(lru.contains("c"));
        lru.clear_stale();
        assert!(lru.is_empty());
    }

    proptest! {
        /// Random op sequences never evict the pinned key, and every
        /// eviction removes the oldest-stamped unpinned entry.
        #[test]
        fn pinned_key_never_evicted(ops in prop::collection::vec((0u8..4, 0usize..6), 1..60)) {
            let keys = ["k0", "k1", "k2", "k3", "k4", "pin"];
            let mut lru: Lru<usize> = Lru::default();
            // Shadow model: key -> stamp, mirroring the recency order.
            let mut shadow: std::collections::BTreeMap<&str, u64> = Default::default();
            let mut tick = 0u64;
            for (op, ki) in ops {
                let key = keys[ki];
                match op {
                    0 => {
                        lru.insert(key, ki);
                        tick += 1;
                        shadow.insert(key, tick);
                    }
                    1 => {
                        lru.touch(key);
                        tick += 1;
                        if let Some(s) = shadow.get_mut(key) { *s = tick; }
                    }
                    2 => {
                        lru.take(key);
                        shadow.remove(key);
                    }
                    _ => {
                        let expect = shadow.iter()
                            .filter(|(k, _)| **k != "pin")
                            .min_by_key(|(_, s)| **s)
                            .map(|(k, _)| (*k).to_string());
                        let got = lru.evict_lru("pin").map(|(k, _)| k);
                        prop_assert_eq!(&got, &expect);
                        prop_assert_ne!(got.as_deref(), Some("pin"));
                        if let Some(k) = expect { shadow.remove(k.as_str()); }
                    }
                }
                prop_assert_eq!(lru.contains("pin"), shadow.contains_key("pin"));
            }
        }
    }
}
