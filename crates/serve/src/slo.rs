//! Per-tenant SLO monitoring: rolling deadline-hit rate with burn
//! alerts, and TTS / queue-delay distributions.
//!
//! The service-level numbers in [`ServiceReport`](crate::ServiceReport)
//! are pool-wide; a noisy neighbour can sink one tenant's deadlines
//! while the aggregate p99 looks fine. [`SloMonitor`] keeps the books
//! per tenant, always on (it feeds [`TenantSlo`] rows into the report
//! and its digest), and mirrors them into `ca-obs` when a recording
//! session is active:
//!
//! * every completed job observes its time-to-solution and queue delay
//!   into `serve.tenant.<t>.{tts_s,queue_delay_s}` quantile histograms
//!   and bumps `serve.tenant.<t>.{jobs,deadline_hits,deadline_misses}`;
//! * the final per-tenant hit rate lands in
//!   `serve.tenant.<t>.hit_rate` gauges;
//! * a rolling window over the tenant's most recent deadline-carrying
//!   jobs drives the **burn alert**: when the windowed hit rate drops
//!   below the configured objective, one `serve.slo_burn` instant fires
//!   (edge-triggered — one alert per excursion, not one per miss) and
//!   the matching counter increments.
//!
//! Instrumentation is strictly an *emission* concern: the monitor's
//! decisions (burn counting included) read only its own state, so a
//! recorded run and an unrecorded run stay bit-identical.

use std::collections::{BTreeMap, VecDeque};

use ca_obs as obs;
use ca_obs::HistogramData;

use crate::metrics::{JobRecord, JobStatus};

/// Service-level objective and alerting window.
#[derive(Debug, Clone, Copy)]
pub struct SloConfig {
    /// Objective: fraction of deadline-carrying jobs that must hit.
    pub target_hit_rate: f64,
    /// Rolling window length, in deadline-carrying jobs per tenant.
    pub window: usize,
    /// Minimum deadline-carrying jobs in the window before the burn
    /// detector may fire (suppresses cold-start noise).
    pub min_observations: usize,
}

impl Default for SloConfig {
    fn default() -> Self {
        Self { target_hit_rate: 0.95, window: 20, min_observations: 4 }
    }
}

/// Final per-tenant SLO summary — one row per tenant, alphabetical.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantSlo {
    /// Billing tenant.
    pub tenant: String,
    /// Jobs observed (rejected ones included).
    pub jobs: u64,
    /// Deadline-carrying jobs observed.
    pub deadline_jobs: u64,
    /// Deadline-carrying jobs that hit.
    pub deadline_hits: u64,
    /// Deadline-carrying jobs that missed.
    pub deadline_misses: u64,
    /// `hits / deadline_jobs`; `1.0` when the tenant carried none.
    pub hit_rate: f64,
    /// Median time-to-solution (non-rejected jobs).
    pub p50_tts_s: f64,
    /// 99th-percentile time-to-solution.
    pub p99_tts_s: f64,
    /// Median queue delay (dispatch minus arrival).
    pub p50_queue_delay_s: f64,
    /// Worst observed queue delay.
    pub max_queue_delay_s: f64,
    /// Burn alerts fired (windowed hit rate fell below the objective).
    pub slo_burns: u64,
}

#[derive(Default)]
struct TenantState {
    tts: HistogramData,
    queue_delay: HistogramData,
    jobs: u64,
    deadline_hits: u64,
    deadline_misses: u64,
    /// Most recent deadline outcomes, newest at the back.
    recent: VecDeque<bool>,
    burns: u64,
    /// Inside a below-objective excursion (edge-trigger latch).
    burning: bool,
}

/// Always-on per-tenant SLO bookkeeping for one service run.
pub struct SloMonitor {
    cfg: SloConfig,
    tenants: BTreeMap<String, TenantState>,
}

impl SloMonitor {
    #[must_use]
    pub fn new(cfg: SloConfig) -> Self {
        Self { cfg, tenants: BTreeMap::new() }
    }

    /// Account one terminal job record. `at_s` is the simulated time the
    /// outcome became known (completion or rejection), used to stamp the
    /// burn instant.
    pub fn observe_job(&mut self, rec: &JobRecord, at_s: f64) {
        let st = self.tenants.entry(rec.tenant.clone()).or_default();
        st.jobs += 1;
        if obs::enabled() {
            obs::counter_add(&obs::names::serve_tenant(&rec.tenant, "jobs"), 1);
        }
        if rec.status != JobStatus::Rejected {
            let delay = (rec.start_s - rec.arrival_s).max(0.0);
            st.tts.observe(rec.tts_s);
            st.queue_delay.observe(delay);
            if obs::enabled() {
                obs::observe(&obs::names::serve_tenant(&rec.tenant, "tts_s"), rec.tts_s);
                obs::observe(&obs::names::serve_tenant(&rec.tenant, "queue_delay_s"), delay);
            }
        }
        let Some(met) = rec.deadline_met else {
            return;
        };
        if met {
            st.deadline_hits += 1;
        } else {
            st.deadline_misses += 1;
        }
        if obs::enabled() {
            let leaf = if met { "deadline_hits" } else { "deadline_misses" };
            obs::counter_add(&obs::names::serve_tenant(&rec.tenant, leaf), 1);
        }
        st.recent.push_back(met);
        while st.recent.len() > self.cfg.window {
            st.recent.pop_front();
        }
        if st.recent.len() < self.cfg.min_observations {
            return;
        }
        let hits = st.recent.iter().filter(|&&m| m).count();
        let rate = hits as f64 / st.recent.len() as f64;
        if rate < self.cfg.target_hit_rate {
            if !st.burning {
                st.burning = true;
                st.burns += 1;
                if obs::enabled() {
                    obs::instant_cause(
                        obs::names::SERVE_SLO_BURN,
                        obs::Track::Host,
                        at_s,
                        &format!(
                            "tenant={} window_hit_rate={:.3} target={:.3}",
                            rec.tenant, rate, self.cfg.target_hit_rate
                        ),
                    );
                    obs::counter_add(obs::names::SERVE_SLO_BURN, 1);
                }
            }
        } else {
            st.burning = false;
        }
    }

    /// Per-tenant summaries (alphabetical by tenant), emitting the
    /// `hit_rate` gauges when a recording session is active.
    #[must_use]
    pub fn finalize(&self) -> Vec<TenantSlo> {
        self.tenants
            .iter()
            .map(|(tenant, st)| {
                let deadline_jobs = st.deadline_hits + st.deadline_misses;
                let hit_rate = if deadline_jobs > 0 {
                    st.deadline_hits as f64 / deadline_jobs as f64
                } else {
                    1.0
                };
                if obs::enabled() {
                    obs::gauge_set(&obs::names::serve_tenant(tenant, "hit_rate"), hit_rate);
                }
                TenantSlo {
                    tenant: tenant.clone(),
                    jobs: st.jobs,
                    deadline_jobs,
                    deadline_hits: st.deadline_hits,
                    deadline_misses: st.deadline_misses,
                    hit_rate,
                    p50_tts_s: st.tts.p50(),
                    p99_tts_s: st.tts.p99(),
                    p50_queue_delay_s: st.queue_delay.p50(),
                    max_queue_delay_s: if st.queue_delay.count > 0 {
                        st.queue_delay.max
                    } else {
                        0.0
                    },
                    slo_burns: st.burns,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tenant: &str, id: u64, tts: f64, met: Option<bool>) -> JobRecord {
        JobRecord {
            id,
            tenant: tenant.into(),
            matrix: "m".into(),
            slice: 0,
            ndev: 1,
            arrival_s: 0.0,
            start_s: tts * 0.25,
            done_s: tts,
            tts_s: tts,
            status: JobStatus::Converged,
            restarts: 1,
            iters: 10,
            relres: 1e-9,
            solver_t_total_s: tts * 0.5,
            warm: false,
            batched: false,
            deadline_met: met,
            x_hash: id,
            x: None,
        }
    }

    #[test]
    fn rates_and_quantiles_per_tenant() {
        let mut mon = SloMonitor::new(SloConfig::default());
        for i in 0..10 {
            mon.observe_job(&rec("acme", i, 1.0 + i as f64, Some(i % 2 == 0)), i as f64);
            mon.observe_job(&rec("globex", 100 + i, 0.5, None), i as f64);
        }
        let rows = mon.finalize();
        assert_eq!(rows.len(), 2);
        let acme = &rows[0];
        assert_eq!(acme.tenant, "acme");
        assert_eq!(acme.jobs, 10);
        assert_eq!(acme.deadline_jobs, 10);
        assert_eq!(acme.deadline_hits, 5);
        assert_eq!(acme.hit_rate, 0.5);
        assert!(acme.p50_tts_s > 1.0 && acme.p50_tts_s < acme.p99_tts_s);
        assert!(acme.p50_queue_delay_s > 0.0);
        assert!(acme.max_queue_delay_s >= acme.p50_queue_delay_s);
        let globex = &rows[1];
        assert_eq!(globex.deadline_jobs, 0);
        assert_eq!(globex.hit_rate, 1.0, "no deadlines carried: vacuously met");
        assert_eq!(globex.slo_burns, 0);
    }

    #[test]
    fn burn_is_edge_triggered_per_excursion() {
        let cfg = SloConfig { target_hit_rate: 0.9, window: 4, min_observations: 2 };
        let mut mon = SloMonitor::new(cfg);
        let mut id = 0;
        let mut push = |mon: &mut SloMonitor, met: bool| {
            mon.observe_job(&rec("acme", id, 1.0, Some(met)), id as f64);
            id += 1;
        };
        // two hits warm the window, then a run of misses: one alert
        push(&mut mon, true);
        push(&mut mon, true);
        push(&mut mon, false);
        push(&mut mon, false);
        push(&mut mon, false);
        // recovery: window refills with hits, rate back above target
        for _ in 0..4 {
            push(&mut mon, true);
        }
        // second excursion: second alert
        push(&mut mon, false);
        let rows = mon.finalize();
        assert_eq!(rows[0].slo_burns, 2, "{rows:?}");
    }

    #[test]
    fn min_observations_suppresses_cold_start() {
        let cfg = SloConfig { target_hit_rate: 0.99, window: 8, min_observations: 4 };
        let mut mon = SloMonitor::new(cfg);
        for i in 0..3 {
            mon.observe_job(&rec("t", i, 1.0, Some(false)), 0.0);
        }
        assert_eq!(mon.finalize()[0].slo_burns, 0);
        let mut mon2 = SloMonitor::new(cfg);
        for i in 0..4 {
            mon2.observe_job(&rec("t", i, 1.0, Some(false)), 0.0);
        }
        assert_eq!(mon2.finalize()[0].slo_burns, 1);
    }

    #[test]
    fn rejected_jobs_skip_latency_histograms() {
        let mut mon = SloMonitor::new(SloConfig::default());
        let mut r = rec("t", 1, 5.0, Some(false));
        r.status = JobStatus::Rejected;
        mon.observe_job(&r, 5.0);
        let row = &mon.finalize()[0];
        assert_eq!(row.jobs, 1);
        assert_eq!(row.deadline_misses, 1);
        assert_eq!(row.p50_tts_s, 0.0, "rejected job must not pollute TTS");
        assert_eq!(row.max_queue_delay_s, 0.0);
    }
}
