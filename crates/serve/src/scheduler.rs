//! The dispatch loop: slices, queue, batching, backfill, and fault
//! isolation.
//!
//! Simulated-time model: each slice is an independent executor. The
//! dispatcher always serves the slice with the *lowest host clock* — a
//! quantity that only ever rises — so jobs become visible (arrival ≤
//! that clock) in a deterministic order, and a job is never started
//! before its arrival. An idle slice with nothing eligible fast-forwards
//! to the next arrival (genuinely idle time moves every clock); all
//! scheduling overhead (planning, dispatch bookkeeping) is charged with
//! `advance_host` only, so it can delay a solve's start but never
//! inflates device clocks or the solver's own phase timings.

use std::collections::{BTreeMap, VecDeque};

use ca_gmres::ft::{ca_gmres_ft_session, FtConfig};
use ca_gmres::prelude::*;
use ca_gpusim::MultiGpu;
use ca_obs as obs;
use ca_obs::export::StreamingTrace;
use ca_sparse::Csr;

use crate::admission::{AdmissionCache, CachedAdmission, FairQueue};
use crate::job::JobRequest;
use crate::metrics::{hash_solution, percentile, JobRecord, JobStatus, ServiceReport};
use crate::residency::Residency;
use crate::slo::SloMonitor;
use crate::{Policy, ServeConfig};

/// One pool slice: an executor plus its warm-operator store.
struct Slice {
    mg: MultiGpu,
    residency: Residency,
    /// Excluded from dispatch until something changes (no eligible job).
    parked: bool,
    /// Simulated interval of the most recent contiguous run of solves,
    /// for cross-slice overlap (backfill) detection.
    busy_from: f64,
    busy_until: f64,
}

/// A job waiting in the visible queue, with its fair-queueing tags.
struct Queued {
    req: JobRequest,
    vstart: f64,
    vfinish: f64,
    /// Best ETA across the configured slice sizes (seconds).
    eta_s: f64,
}

/// The service: matrix pool, slices, admission state, and the queue
/// discipline. Construct once, then [`Service::run`] an arrival stream.
pub struct Service {
    cfg: ServeConfig,
    matrices: BTreeMap<String, Csr>,
    slices: Vec<Slice>,
    admission: AdmissionCache,
    fair: FairQueue,
    slo: SloMonitor,
}

impl Service {
    /// Build the pool: one executor per configured slice, fault plans
    /// installed where requested, admission cache cold.
    #[must_use]
    pub fn new(cfg: ServeConfig, matrices: Vec<(String, Csr)>) -> Self {
        let slices = cfg
            .slices
            .iter()
            .enumerate()
            .map(|(i, &nd)| {
                let mut mg = MultiGpu::new(nd, cfg.model.clone(), cfg.kernel_config);
                mg.set_schedule(cfg.schedule);
                if cfg.record_kernel_traces {
                    mg.enable_trace();
                }
                if let Some((_, plan)) = cfg.fault_plans.iter().find(|(si, _)| *si == i) {
                    mg.set_fault_plan(plan.clone());
                }
                Slice {
                    mg,
                    residency: Residency::default(),
                    parked: false,
                    busy_from: 0.0,
                    busy_until: 0.0,
                }
            })
            .collect();
        let admission = AdmissionCache::new(
            cfg.admission_space.clone(),
            cfg.model.clone(),
            cfg.kernel_config,
            cfg.base.solver.m,
            cfg.ewma_alpha,
            cfg.expected_cycles_init,
        );
        let fair = FairQueue::new(cfg.tenant_weights.clone());
        let slo = SloMonitor::new(cfg.slo);
        Self { cfg, matrices: matrices.into_iter().collect(), slices, admission, fair, slo }
    }

    /// Simulated clock of slice `i` (host view) — test hook.
    #[must_use]
    pub fn slice_host_time(&self, i: usize) -> f64 {
        self.slices[i].mg.host_time()
    }

    /// Run an arrival stream to completion.
    pub fn run(&mut self, jobs: Vec<JobRequest>) -> ServiceReport {
        self.run_inner(jobs, None)
    }

    /// [`Service::run`] with incremental span export: sealed spans are
    /// drained into `trace` after every job, so the recorder's resident
    /// log stays bounded over thousands of jobs.
    pub fn run_streaming(
        &mut self,
        jobs: Vec<JobRequest>,
        trace: &mut StreamingTrace,
    ) -> ServiceReport {
        self.run_inner(jobs, Some(trace))
    }

    fn run_inner(
        &mut self,
        mut jobs: Vec<JobRequest>,
        mut trace: Option<&mut StreamingTrace>,
    ) -> ServiceReport {
        jobs.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s).then(a.id.cmp(&b.id)));
        self.slo = SloMonitor::new(self.cfg.slo);
        let mut pending: VecDeque<JobRequest> = jobs.into();
        let mut queue: Vec<Queued> = Vec::new();
        let mut report = ServiceReport::default();
        // Distinct configured slice sizes, for ingest-time ETA/feasibility.
        let mut sizes: Vec<usize> = self.cfg.slices.clone();
        sizes.sort_unstable();
        sizes.dedup();

        loop {
            // Serve the unparked slice with the lowest host clock.
            let Some(s) = self
                .slices
                .iter()
                .enumerate()
                .filter(|(_, sl)| !sl.parked)
                .min_by(|(i, a), (j, b)| {
                    a.mg.host_time().total_cmp(&b.mg.host_time()).then(i.cmp(j))
                })
                .map(|(i, _)| i)
            else {
                // Every slice parked: nothing queued is servable on the
                // current pool (e.g. degradation shrank every slice below
                // the job's admissible device counts). Reject the queue;
                // later arrivals may still be servable, so keep draining.
                let h =
                    self.slices.iter().map(|sl| sl.mg.host_time()).fold(f64::INFINITY, f64::min);
                for q in queue.drain(..) {
                    let r = reject_record(&q.req, h);
                    self.slo.observe_job(&r, h);
                    report.jobs.push(r);
                    report.rejected += 1;
                }
                if pending.is_empty() {
                    break;
                }
                self.unpark();
                continue;
            };
            let h = self.slices[s].mg.host_time();

            // Ingest arrivals visible at this clock (the pool-wide
            // minimum, so tags are assigned in a deterministic order).
            while pending.front().is_some_and(|j| j.arrival_s <= h) {
                let req = pending.pop_front().expect("peeked");
                self.ingest(req, &sizes, s, &mut queue, &mut report);
                self.unpark();
            }
            report.max_queue_depth = report.max_queue_depth.max(queue.len());

            if queue.is_empty() {
                match pending.front() {
                    Some(j) => {
                        // Idle until the next arrival: real idle time, so
                        // every clock on the slice moves.
                        let t = j.arrival_s;
                        self.slices[s].mg.fast_forward(t);
                        continue;
                    }
                    None => break,
                }
            }

            match self.pick(s, &queue, h) {
                Some(qi) => {
                    self.unpark();
                    self.dispatch(s, qi, &mut queue, &mut report, &mut trace);
                }
                None => {
                    // Nothing in the queue admits at this slice's device
                    // count: park it until another slice makes progress.
                    self.slices[s].parked = true;
                }
            }
        }

        if self.cfg.record_kernel_traces && obs::enabled() {
            for sl in &mut self.slices {
                ca_gpusim::obs_ingest_traces(&sl.mg.take_traces());
            }
        }
        self.finalize(&mut report);
        report
    }

    /// Tag a newly visible job (SFQ) or reject it if no configured slice
    /// size admits it.
    fn ingest(
        &mut self,
        req: JobRequest,
        sizes: &[usize],
        charge_slice: usize,
        queue: &mut Vec<Queued>,
        report: &mut ServiceReport,
    ) {
        let a = &self.matrices[&req.matrix];
        let mut eta: Option<f64> = None;
        let mut misses = 0u32;
        for &nd in sizes {
            let (e, miss) = self.admission.eta_s(&req.matrix, a, nd);
            misses += u32::from(miss);
            if let Some(e) = e {
                eta = Some(eta.map_or(e, |b: f64| b.min(e)));
            }
        }
        if misses > 0 {
            self.slices[charge_slice]
                .mg
                .advance_host(f64::from(misses) * self.cfg.admission_cost_s);
        }
        let Some(eta_s) = eta else {
            let h = self.slices[charge_slice].mg.host_time();
            let r = reject_record(&req, h);
            self.slo.observe_job(&r, h);
            report.jobs.push(r);
            report.rejected += 1;
            return;
        };
        let (vstart, vfinish) = self.fair.tag(&req.tenant, eta_s);
        if obs::enabled() {
            obs::sample(obs::names::SERVE_QUEUE_DEPTH, self.slices[charge_slice].mg.host_time(), {
                queue.len() as f64 + 1.0
            });
        }
        queue.push(Queued { req, vstart, vfinish, eta_s });
    }

    /// Choose the next job for slice `s`, or `None` when nothing queued
    /// admits at its device count.
    fn pick(&mut self, s: usize, queue: &[Queued], h: f64) -> Option<usize> {
        let nd = self.slices[s].mg.n_gpus();
        let mut feasible: Vec<usize> = Vec::new();
        let mut miss_charge = 0u32;
        for (i, q) in queue.iter().enumerate() {
            let a = &self.matrices[&q.req.matrix];
            let (v, miss) = self.admission.lookup(&q.req.matrix, a, nd);
            miss_charge += u32::from(miss);
            if v.is_some() {
                feasible.push(i);
            }
        }
        if miss_charge > 0 {
            self.slices[s].mg.advance_host(f64::from(miss_charge) * self.cfg.admission_cost_s);
        }
        if feasible.is_empty() {
            return None;
        }
        if self.cfg.policy == Policy::Fifo {
            return feasible.iter().copied().min_by(|&i, &j| {
                let (a, b) = (&queue[i].req, &queue[j].req);
                a.arrival_s.total_cmp(&b.arrival_s).then(a.id.cmp(&b.id))
            });
        }
        // Deadline-urgency bucket: jobs that will miss unless run now.
        let urgent = feasible
            .iter()
            .copied()
            .filter(|&i| queue[i].req.deadline_s.is_some_and(|d| h + queue[i].eta_s > d));
        if let Some(pick) = urgent.min_by(|&i, &j| {
            let (a, b) = (&queue[i], &queue[j]);
            let (da, db) = (a.req.deadline_s.unwrap(), b.req.deadline_s.unwrap());
            da.total_cmp(&db).then(a.vfinish.total_cmp(&b.vfinish)).then(a.req.id.cmp(&b.req.id))
        }) {
            return Some(pick);
        }
        // Fair order, with a bounded residency-affinity preference.
        let by_vf = |&i: &usize, &j: &usize| {
            queue[i]
                .vfinish
                .total_cmp(&queue[j].vfinish)
                .then(queue[i].req.id.cmp(&queue[j].req.id))
        };
        let head = feasible.iter().copied().min_by(by_vf).expect("nonempty");
        let window = queue[head].vfinish * (1.0 + self.cfg.affinity_slack);
        feasible
            .iter()
            .copied()
            .filter(|&i| {
                self.slices[s].residency.contains(&queue[i].req.matrix)
                    && queue[i].vfinish <= window
            })
            .min_by(by_vf)
            .or(Some(head))
    }

    /// Run the chosen job (plus same-matrix riders, batched) on slice `s`.
    fn dispatch(
        &mut self,
        s: usize,
        qi: usize,
        queue: &mut Vec<Queued>,
        report: &mut ServiceReport,
        trace: &mut Option<&mut StreamingTrace>,
    ) {
        let primary = queue.remove(qi);
        let key = primary.req.matrix.clone();
        let h = self.slices[s].mg.host_time();
        if obs::enabled() {
            obs::sample(obs::names::SERVE_QUEUE_DEPTH, h, queue.len() as f64);
        }

        // Backfill: this dispatch overlaps, in simulated time, either
        // this slice's still-draining device queues (host staging under a
        // previous tenant's tail) or another slice's in-flight solve —
        // the event-driven overlap the slice partitioning buys.
        let overlap = self
            .slices
            .iter()
            .enumerate()
            .any(|(i, sl)| i != s && sl.busy_from <= h && h < sl.busy_until);
        if self.slices[s].mg.time() > h + 1e-12 || overlap {
            report.backfill_hits += 1;
            if obs::enabled() {
                obs::counter_add(obs::names::SERVE_BACKFILL_HITS, 1);
            }
        }

        let nd = self.slices[s].mg.n_gpus();
        let a = &self.matrices[&key];
        let n = a.nrows();
        let (verdict, miss) = self.admission.lookup(&key, a, nd);
        let adm: CachedAdmission = match verdict {
            Some(v) => v.clone(),
            None => {
                // Degradation can shrink a slice below any admissible
                // count between pick and dispatch.
                let r = reject_record(&primary.req, h);
                self.slo.observe_job(&r, h);
                report.jobs.push(r);
                report.rejected += 1;
                return;
            }
        };
        let overhead =
            self.cfg.dispatch_cost_s + if miss { self.cfg.admission_cost_s } else { 0.0 };
        self.slices[s].mg.advance_host(overhead);
        self.fair.on_dispatch(primary.vstart);

        // Riders: queued jobs on the same matrix, fairest first.
        let mut batch = vec![primary];
        if self.cfg.batch_max > 1 {
            let mut riders: Vec<usize> =
                (0..queue.len()).filter(|&i| queue[i].req.matrix == key).collect();
            riders.sort_by(|&i, &j| {
                queue[i]
                    .vfinish
                    .total_cmp(&queue[j].vfinish)
                    .then(queue[i].req.id.cmp(&queue[j].req.id))
            });
            riders.truncate(self.cfg.batch_max - 1);
            riders.sort_unstable_by(|a, b| b.cmp(a)); // remove back-to-front
            for i in riders {
                batch.push(queue.remove(i));
            }
            batch[1..]
                .sort_by(|x, y| x.vfinish.total_cmp(&y.vfinish).then(x.req.id.cmp(&y.req.id)));
        }
        let batched = batch.len() > 1;
        if batched {
            report.batches += 1;
            report.batched_jobs += batch.len() as u64;
        }

        // Make room for a cold build before any allocation happens.
        if self.cfg.residency && !self.slices[s].residency.contains(&key) {
            let sl = &mut self.slices[s];
            let evicted = sl.residency.make_room(&mut sl.mg, &key, &adm.mem_bytes_per_dev);
            report.evictions += evicted;
            if evicted > 0 && obs::enabled() {
                obs::counter_add(obs::names::SERVE_EVICTIONS, evicted);
            }
        }

        // Aggregated RHS staging: one charged upload for the whole batch,
        // then each solve installs its RHS without re-charging.
        let mut precharged = false;
        if batched {
            let layout = Layout::even(n, nd);
            let bytes: Vec<usize> = (0..nd).map(|d| batch.len() * 8 * layout.nlocal(d)).collect();
            precharged = self.slices[s].mg.to_devices(&bytes).is_ok();
        }

        for q in batch {
            self.solve_one(s, q, &key, &adm, precharged, batched, report);
            if let Some(t) = trace.as_deref_mut() {
                t.flush_sealed();
            }
        }
    }

    /// One solve on slice `s`, with residency and fault bookkeeping.
    #[allow(clippy::too_many_arguments)]
    fn solve_one(
        &mut self,
        s: usize,
        q: Queued,
        key: &str,
        adm: &CachedAdmission,
        precharged: bool,
        batched: bool,
        report: &mut ServiceReport,
    ) {
        let a = &self.matrices[key];
        let sl = &mut self.slices[s];
        let start_s = sl.mg.host_time();
        let resident = if self.cfg.residency { sl.residency.take(key) } else { None };
        let warm = resident.is_some();
        if warm {
            report.warm_hits += 1;
            if obs::enabled() {
                obs::counter_add(obs::names::SERVE_WARM_HITS, 1);
            }
        }
        let ftcfg = FtConfig {
            solver: adm.cand.solver_config(
                self.cfg.base.solver.m,
                q.req.rtol,
                self.cfg.base.solver.max_restarts,
            ),
            ..self.cfg.base.clone()
        };
        let sp = obs::span_begin("serve.job", obs::Track::Host, start_s);
        let (out, res) =
            ca_gmres_ft_session(&mut sl.mg, a, &q.req.rhs, &ftcfg, None, resident, precharged);
        let done_s = sl.mg.time();
        obs::span_end(sp, done_s);
        if start_s > sl.busy_until {
            sl.busy_from = start_s;
        }
        sl.busy_until = sl.busy_until.max(done_s);

        // Fault isolation: an in-solve executor rebuild (device-loss
        // recovery) invalidated every other operator on this slice.
        if out.report.executor_rebuilds > 0 {
            report.solver_rebuilds += out.report.executor_rebuilds as u64;
            sl.residency.clear_stale();
        }
        match res {
            Some(r) if self.cfg.residency => sl.residency.park(&mut sl.mg, key, r),
            Some(r) => r.release(&mut sl.mg),
            None => {
                // Fatal solve: the driver dropped its system without
                // freeing (accounting now holds orphaned bytes) — unless
                // a rebuild already replaced the executor wholesale.
                if out.report.executor_rebuilds == 0 {
                    self.reinit_slice(s);
                    report.executor_reinits += 1;
                }
            }
        }
        self.admission.observe_cycles(key, out.stats.restarts);

        let status =
            if out.stats.converged { JobStatus::Converged } else { JobStatus::Unconverged };
        let deadline_met = q.req.deadline_s.map(|d| done_s <= d);
        if deadline_met == Some(false) {
            report.deadline_misses += 1;
        }
        let rec = JobRecord {
            id: q.req.id,
            tenant: q.req.tenant,
            matrix: key.to_string(),
            slice: s,
            ndev: self.slices[s].mg.n_gpus(),
            arrival_s: q.req.arrival_s,
            start_s,
            done_s,
            tts_s: done_s - q.req.arrival_s,
            status,
            restarts: out.stats.restarts,
            iters: out.stats.total_iters,
            relres: out.stats.final_relres,
            solver_t_total_s: out.stats.t_total,
            warm,
            batched,
            deadline_met,
            x_hash: hash_solution(&out.x),
            x: self.cfg.keep_solutions.then_some(out.x),
        };
        self.slo.observe_job(&rec, done_s);
        report.jobs.push(rec);
    }

    /// Replace slice `s`'s executor after a fatal solve leaked device
    /// allocations: fresh devices at the inherited simulated time, with
    /// communication counters and reclaimed-time carried over so
    /// end-to-end accounting stays honest.
    fn reinit_slice(&mut self, s: usize) {
        let sl = &mut self.slices[s];
        let t = sl.mg.time();
        let counters = sl.mg.counters();
        let reclaimed = sl.mg.time_reclaimed();
        let nd = sl.mg.n_gpus();
        if self.cfg.record_kernel_traces && obs::enabled() {
            ca_gpusim::obs_ingest_traces(&sl.mg.take_traces());
        }
        let mut fresh = MultiGpu::new(nd, self.cfg.model.clone(), self.cfg.kernel_config);
        fresh.set_schedule(self.cfg.schedule);
        if self.cfg.record_kernel_traces {
            fresh.enable_trace();
        }
        fresh.fast_forward(t);
        fresh.absorb_counters(counters);
        fresh.absorb_time_reclaimed(reclaimed);
        sl.mg = fresh;
        sl.residency.clear_stale();
    }

    fn unpark(&mut self) {
        for sl in &mut self.slices {
            sl.parked = false;
        }
    }

    /// Aggregate the dashboard numbers once the queue has drained.
    fn finalize(&self, report: &mut ServiceReport) {
        report.planner_misses = self.admission.misses;
        let makespan = report.jobs.iter().map(|j| j.done_s).fold(0.0f64, f64::max);
        report.makespan_s = makespan;
        let completed = report.jobs.iter().filter(|j| j.status != JobStatus::Rejected).count();
        report.throughput_jobs_per_s =
            if makespan > 0.0 { completed as f64 / makespan } else { 0.0 };
        let tts: Vec<f64> = report
            .jobs
            .iter()
            .filter(|j| j.status != JobStatus::Rejected)
            .map(|j| j.tts_s)
            .collect();
        report.p50_tts_s = percentile(&tts, 50.0);
        report.p99_tts_s = percentile(&tts, 99.0);
        report.tenants = self.slo.finalize();
        report.mean_tts_s =
            if tts.is_empty() { 0.0 } else { tts.iter().sum::<f64>() / tts.len() as f64 };
        report.utilization = self
            .slices
            .iter()
            .map(|sl| {
                if makespan <= 0.0 {
                    return 0.0;
                }
                let busy: f64 = (0..sl.mg.n_gpus()).map(|d| sl.mg.device(d).busy_time()).sum();
                busy / (sl.mg.n_gpus() as f64 * makespan)
            })
            .collect();
        if obs::enabled() {
            obs::gauge_set(obs::names::SERVE_THROUGHPUT_JOBS_PER_S, report.throughput_jobs_per_s);
            obs::gauge_set(obs::names::SERVE_P50_TTS_S, report.p50_tts_s);
            obs::gauge_set(obs::names::SERVE_P99_TTS_S, report.p99_tts_s);
            obs::gauge_set(obs::names::SERVE_MAX_QUEUE_DEPTH, report.max_queue_depth as f64);
        }
    }
}

fn reject_record(req: &JobRequest, at_s: f64) -> JobRecord {
    JobRecord {
        id: req.id,
        tenant: req.tenant.clone(),
        matrix: req.matrix.clone(),
        slice: usize::MAX,
        ndev: 0,
        arrival_s: req.arrival_s,
        start_s: at_s,
        done_s: at_s,
        tts_s: at_s - req.arrival_s,
        status: JobStatus::Rejected,
        restarts: 0,
        iters: 0,
        relres: f64::NAN,
        solver_t_total_s: 0.0,
        warm: false,
        batched: false,
        deadline_met: req.deadline_s.map(|d| at_s <= d),
        x_hash: 0,
        x: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::open_loop_arrivals;
    use crate::job::ArrivalSpec;
    use crate::ServeConfig;

    fn pool() -> Vec<(String, Csr)> {
        vec![
            ("lap16".to_string(), ca_sparse::gen::laplace2d(16, 16)),
            ("lap20".to_string(), ca_sparse::gen::laplace2d(20, 20)),
        ]
    }

    fn arrivals(seed: u64, jobs: usize, rate: f64) -> Vec<JobRequest> {
        open_loop_arrivals(&ArrivalSpec {
            seed,
            jobs,
            rate_jobs_per_s: rate,
            tenants: vec!["acme".into(), "beta".into()],
            matrices: vec![("lap16".into(), 256), ("lap20".into(), 400)],
            rtol: 1e-8,
            deadline_fraction: 0.3,
            deadline_headroom_s: (0.01, 0.1),
        })
    }

    #[test]
    fn single_job_round_trip() {
        let mut svc = Service::new(ServeConfig::new(vec![2]), pool());
        let rep = svc.run(arrivals(1, 1, 10.0));
        assert_eq!(rep.jobs.len(), 1);
        let j = &rep.jobs[0];
        assert_eq!(j.status, JobStatus::Converged);
        assert!(j.relres <= 1e-8, "{}", j.relres);
        assert_eq!(rep.rejected, 0);
        assert!(j.start_s >= j.arrival_s);
        assert!(j.done_s > j.start_s);
        assert!(j.tts_s >= j.solver_t_total_s);
        assert!(rep.throughput_jobs_per_s > 0.0);
        assert_eq!(rep.utilization.len(), 1);
        assert!(rep.utilization[0] > 0.0);
    }

    #[test]
    fn repeated_matrices_hit_warm_residency_and_batch() {
        let mut svc = Service::new(ServeConfig::new(vec![2]), pool());
        let rep = svc.run(arrivals(3, 12, 500.0));
        assert_eq!(rep.jobs.len(), 12);
        assert!(rep.jobs.iter().all(|j| j.status == JobStatus::Converged));
        assert!(rep.warm_hits > 0, "no warm reuse: {rep:?}");
        assert!(rep.batched_jobs > 0, "no batching under saturation");
        // Two matrix classes at one device count: the planner ran at most
        // once per class.
        assert!(rep.planner_misses <= 2, "{}", rep.planner_misses);
        assert!(rep.max_queue_depth > 1);
    }

    #[test]
    fn recorded_stream_feeds_kernel_metrics_and_stays_bit_identical() {
        let run = |record: bool| {
            let mut cfg = ServeConfig::new(vec![1, 2]);
            cfg.record_kernel_traces = record;
            let mut svc = Service::new(cfg, pool());
            svc.run(arrivals(11, 8, 300.0)).digest()
        };
        let plain = run(false);
        assert_eq!(plain, run(true), "tracing must not perturb the stream");

        ca_obs::start();
        let recorded = run(true);
        let rec = ca_obs::finish();
        assert_eq!(plain, recorded, "obs session must not perturb the stream");
        let view = rec.metrics.view();
        let kernels = view.histograms_with_prefix("kernel.");
        assert!(!kernels.is_empty(), "no kernel metrics ingested from the stream");
        let spmv_calls: u64 = view.counter("kernel.spmv.calls").unwrap_or(0)
            + view.counter("kernel.mpk_step.calls").unwrap_or(0);
        assert!(spmv_calls > 0, "stream of solves recorded no SpMV/MPK work");

        ca_obs::start();
        let unrecorded = run(false);
        let rec = ca_obs::finish();
        assert_eq!(plain, unrecorded);
        assert!(
            rec.metrics.view().histograms_with_prefix("kernel.").is_empty(),
            "flag off must ingest nothing"
        );
    }

    #[test]
    fn rerun_is_bit_identical() {
        let run = || {
            let mut svc = Service::new(ServeConfig::new(vec![1, 2]), pool());
            svc.run(arrivals(9, 10, 400.0))
        };
        let (a, b) = (run(), run());
        assert_eq!(a.digest(), b.digest());
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.x_hash, y.x_hash);
            assert_eq!(x.done_s.to_bits(), y.done_s.to_bits());
        }
    }

    #[test]
    fn tenant_slo_rows_cover_every_job() {
        let mut svc = Service::new(ServeConfig::new(vec![1, 2]), pool());
        let rep = svc.run(arrivals(7, 10, 400.0));
        assert!(!rep.tenants.is_empty());
        let jobs: u64 = rep.tenants.iter().map(|t| t.jobs).sum();
        assert_eq!(jobs, rep.jobs.len() as u64);
        let misses: u64 = rep.tenants.iter().map(|t| t.deadline_misses).sum();
        assert_eq!(misses, rep.deadline_misses);
        let mut names: Vec<&str> = rep.tenants.iter().map(|t| t.tenant.as_str()).collect();
        let sorted = names.clone();
        names.sort_unstable();
        assert_eq!(names, sorted, "tenant rows must be alphabetical");
        for t in &rep.tenants {
            assert!((0.0..=1.0).contains(&t.hit_rate), "{t:?}");
            assert!(t.p50_tts_s <= t.p99_tts_s, "{t:?}");
            assert_eq!(t.deadline_jobs, t.deadline_hits + t.deadline_misses);
        }
    }

    #[test]
    fn fifo_arm_serves_in_arrival_order_cold() {
        let mut svc = Service::new(ServeConfig::naive_fifo(2), pool());
        let rep = svc.run(arrivals(5, 8, 400.0));
        assert_eq!(rep.jobs.len(), 8);
        assert!(rep.jobs.iter().all(|j| j.status == JobStatus::Converged));
        assert_eq!(rep.warm_hits, 0);
        assert_eq!(rep.batches, 0);
        assert_eq!(rep.evictions, 0);
        let ids: Vec<u64> = rep.jobs.iter().map(|j| j.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "FIFO must complete in arrival order");
    }
}
