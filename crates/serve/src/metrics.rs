//! Service-level outcomes: per-job records, aggregate dashboard
//! numbers, per-tenant SLO rows, and the determinism digest.

use crate::slo::TenantSlo;

/// Terminal state of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Solved to tolerance.
    Converged,
    /// Solve finished without reaching the tolerance (iteration cap or
    /// accepted-checkpoint return after an unrecoverable fault).
    Unconverged,
    /// Rejected at admission: no feasible plan at the slice's device
    /// count (e.g. the operator cannot fit on the pool).
    Rejected,
}

/// One completed (or rejected) job, in completion order.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Request id.
    pub id: u64,
    /// Billing tenant.
    pub tenant: String,
    /// Matrix-pool key.
    pub matrix: String,
    /// Pool slice the job ran on.
    pub slice: usize,
    /// Devices of that slice at dispatch time.
    pub ndev: usize,
    /// Simulated arrival.
    pub arrival_s: f64,
    /// Simulated dispatch (host clock when the slice picked it up).
    pub start_s: f64,
    /// Simulated completion (device tail after the solve).
    pub done_s: f64,
    /// Time to solution: `done - arrival` (queueing included).
    pub tts_s: f64,
    /// Terminal state.
    pub status: JobStatus,
    /// Restart cycles the solve took.
    pub restarts: usize,
    /// Total inner iterations.
    pub iters: usize,
    /// Final relative residual.
    pub relres: f64,
    /// Solver-only time ([`ca_gmres::stats::SolveStats::t_total`]) —
    /// excludes queueing and scheduling overhead by construction.
    pub solver_t_total_s: f64,
    /// Whether a warm resident operator was reused (no staging).
    pub warm: bool,
    /// Whether the job rode in a multi-RHS batch.
    pub batched: bool,
    /// `Some(met?)` for deadline-carrying jobs.
    pub deadline_met: Option<bool>,
    /// FNV-1a over the solution bits.
    pub x_hash: u64,
    /// Full solution, kept only under
    /// [`crate::ServeConfig::keep_solutions`].
    pub x: Option<Vec<f64>>,
}

/// Aggregate outcome of one service run.
#[derive(Debug, Clone, Default)]
pub struct ServiceReport {
    /// Per-job records in completion order.
    pub jobs: Vec<JobRecord>,
    /// Simulated end-to-end makespan (max completion time).
    pub makespan_s: f64,
    /// Completed jobs per simulated second.
    pub throughput_jobs_per_s: f64,
    /// Median time to solution.
    pub p50_tts_s: f64,
    /// 99th-percentile time to solution (nearest-rank).
    pub p99_tts_s: f64,
    /// Mean time to solution.
    pub mean_tts_s: f64,
    /// Per-slice device utilization: busy time over `ndev * makespan`.
    pub utilization: Vec<f64>,
    /// Operators evicted to make room.
    pub evictions: u64,
    /// Dispatches that overlapped, in simulated time, with another
    /// slice's in-flight solve or with this slice's still-draining
    /// device queues — one tenant's work proceeding under another's.
    pub backfill_hits: u64,
    /// Solves that reused a warm resident operator.
    pub warm_hits: u64,
    /// Multi-RHS batches dispatched.
    pub batches: u64,
    /// Jobs that rode in those batches.
    pub batched_jobs: u64,
    /// Jobs rejected at admission.
    pub rejected: u64,
    /// Deadline-carrying jobs that missed.
    pub deadline_misses: u64,
    /// Peak visible queue depth.
    pub max_queue_depth: usize,
    /// Planner invocations (admission cache misses).
    pub planner_misses: u64,
    /// Slice executors re-initialized after a fatal solve (leaked
    /// allocations reclaimed by rebuilding).
    pub executor_reinits: u64,
    /// Executor rebuilds *inside* solves (device-loss recovery).
    pub solver_rebuilds: u64,
    /// Per-tenant SLO summaries (alphabetical by tenant): deadline-hit
    /// rates, TTS / queue-delay quantiles, and burn-alert counts.
    pub tenants: Vec<TenantSlo>,
}

fn fnv(h: u64, x: u64) -> u64 {
    let mut h = h;
    for b in x.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// FNV-1a over a solution vector's bits.
#[must_use]
pub fn hash_solution(x: &[f64]) -> u64 {
    x.iter().fold(0xcbf2_9ce4_8422_2325, |h, v| fnv(h, v.to_bits()))
}

/// Nearest-rank percentile of an (unsorted) sample; 0.0 when empty.
#[must_use]
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut s = samples.to_vec();
    s.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * s.len() as f64).ceil().max(1.0) as usize;
    s[rank.min(s.len()) - 1]
}

impl ServiceReport {
    /// Order-sensitive digest of everything scheduling decides:
    /// completion order, per-job solutions and clocks, and the
    /// dashboard counters. Two runs are bit-identical iff their digests
    /// match; CI diffs it across `RAYON_NUM_THREADS`.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for j in &self.jobs {
            h = fnv(h, j.id);
            h = fnv(h, j.x_hash);
            h = fnv(h, j.done_s.to_bits());
            h = fnv(h, j.start_s.to_bits());
            h = fnv(h, j.slice as u64);
            h = fnv(h, u64::from(j.warm) | u64::from(j.batched) << 1);
            h = fnv(h, j.iters as u64);
        }
        for c in [
            self.evictions,
            self.backfill_hits,
            self.warm_hits,
            self.batches,
            self.batched_jobs,
            self.rejected,
            self.deadline_misses,
            self.max_queue_depth as u64,
            self.planner_misses,
            self.executor_reinits,
            self.solver_rebuilds,
        ] {
            h = fnv(h, c);
        }
        for t in &self.tenants {
            for b in t.tenant.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
            for c in [t.jobs, t.deadline_hits, t.deadline_misses, t.slo_burns] {
                h = fnv(h, c);
            }
            for v in [t.hit_rate, t.p50_tts_s, t.p99_tts_s, t.p50_queue_delay_s] {
                h = fnv(h, v.to_bits());
            }
        }
        fnv(h, self.makespan_s.to_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let s: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&s, 50.0), 50.0);
        assert_eq!(percentile(&s, 99.0), 99.0);
        assert_eq!(percentile(&s, 100.0), 100.0);
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 50.0), 2.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn digest_sees_order_and_counters() {
        let job = |id: u64| JobRecord {
            id,
            tenant: "t".into(),
            matrix: "m".into(),
            slice: 0,
            ndev: 1,
            arrival_s: 0.0,
            start_s: 0.0,
            done_s: id as f64,
            tts_s: id as f64,
            status: JobStatus::Converged,
            restarts: 1,
            iters: 10,
            relres: 1e-9,
            solver_t_total_s: 0.5,
            warm: false,
            batched: false,
            deadline_met: None,
            x_hash: 42 + id,
            x: None,
        };
        let mut a = ServiceReport { jobs: vec![job(1), job(2)], ..Default::default() };
        let b = ServiceReport { jobs: vec![job(2), job(1)], ..Default::default() };
        assert_ne!(a.digest(), b.digest());
        let d0 = a.digest();
        a.evictions += 1;
        assert_ne!(a.digest(), d0);
        let d1 = a.digest();
        a.tenants.push(TenantSlo { tenant: "t".into(), slo_burns: 1, ..TenantSlo::default() });
        assert_ne!(a.digest(), d1, "digest must see the tenant SLO rows");
    }
}
