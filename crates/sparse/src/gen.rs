//! Synthetic matrix generators.
//!
//! No network access means no University of Florida collection, so the
//! benchmarks run on structural analogs of the paper's four matrices
//! (Fig. 12) plus standard PDE stencils used by the test-suite. The
//! analogs match the *character* that drives the paper's results: average
//! row density, banded vs irregular structure (which controls the MPK
//! surface-to-volume ratio of Fig. 6), and symmetric vs saddle-point
//! spectra (which control GMRES convergence). See DESIGN.md for the
//! mapping table.

use crate::{Coo, Csr};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// 2-D 5-point Laplacian on an `nx x ny` grid (row-major vertex order).
/// The canonical well-behaved SPD test matrix.
pub fn laplace2d(nx: usize, ny: usize) -> Csr {
    let n = nx * ny;
    let mut c = Coo::new(n, n);
    c.reserve(5 * n);
    let idx = |i: usize, j: usize| i * ny + j;
    for i in 0..nx {
        for j in 0..ny {
            let v = idx(i, j);
            c.add(v, v, 4.0);
            if i > 0 {
                c.add(v, idx(i - 1, j), -1.0);
            }
            if i + 1 < nx {
                c.add(v, idx(i + 1, j), -1.0);
            }
            if j > 0 {
                c.add(v, idx(i, j - 1), -1.0);
            }
            if j + 1 < ny {
                c.add(v, idx(i, j + 1), -1.0);
            }
        }
    }
    c.to_csr()
}

/// 3-D 7-point Laplacian on an `nx x ny x nz` grid.
pub fn laplace3d(nx: usize, ny: usize, nz: usize) -> Csr {
    let n = nx * ny * nz;
    let mut c = Coo::new(n, n);
    c.reserve(7 * n);
    let idx = |i: usize, j: usize, k: usize| (i * ny + j) * nz + k;
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                let v = idx(i, j, k);
                c.add(v, v, 6.0);
                if i > 0 {
                    c.add(v, idx(i - 1, j, k), -1.0);
                }
                if i + 1 < nx {
                    c.add(v, idx(i + 1, j, k), -1.0);
                }
                if j > 0 {
                    c.add(v, idx(i, j - 1, k), -1.0);
                }
                if j + 1 < ny {
                    c.add(v, idx(i, j + 1, k), -1.0);
                }
                if k > 0 {
                    c.add(v, idx(i, j, k - 1), -1.0);
                }
                if k + 1 < nz {
                    c.add(v, idx(i, j, k + 1), -1.0);
                }
            }
        }
    }
    c.to_csr()
}

/// 2-D convection-diffusion (upwind) — a genuinely *nonsymmetric* matrix,
/// the natural habitat of GMRES. `peclet` controls the convection
/// strength (0 = pure diffusion).
pub fn convection_diffusion(nx: usize, ny: usize, peclet: f64) -> Csr {
    let n = nx * ny;
    let mut c = Coo::new(n, n);
    c.reserve(5 * n);
    let idx = |i: usize, j: usize| i * ny + j;
    // upwind discretization of u_x + u_y with wind (1, 0.5)
    let (bx, by) = (peclet, 0.5 * peclet);
    for i in 0..nx {
        for j in 0..ny {
            let v = idx(i, j);
            c.add(v, v, 4.0 + bx + by);
            if i > 0 {
                c.add(v, idx(i - 1, j), -1.0 - bx);
            }
            if i + 1 < nx {
                c.add(v, idx(i + 1, j), -1.0);
            }
            if j > 0 {
                c.add(v, idx(i, j - 1), -1.0 - by);
            }
            if j + 1 < ny {
                c.add(v, idx(i, j + 1), -1.0);
            }
        }
    }
    c.to_csr()
}

/// Deterministic log-uniform "material coefficient" for the edge (u, w):
/// spans about two orders of magnitude. Heterogeneous element stiffness is
/// what makes real FEM matrices hard for unpreconditioned Krylov methods —
/// it fills the low end of the spectrum densely instead of leaving one
/// isolated near-null mode.
fn edge_coeff(u: usize, w: usize) -> f64 {
    let (a, b) = (u.min(w) as u64, u.max(w) as u64);
    let mut h = a.wrapping_mul(0x9E3779B97F4A7C15) ^ b.wrapping_mul(0xC2B2AE3D27D4EB4F);
    h ^= h >> 29;
    h = h.wrapping_mul(0xBF58476D1CE4E5B9);
    h ^= h >> 32;
    let u01 = (h >> 11) as f64 / (1u64 << 53) as f64;
    // log-uniform in [0.01, 1]
    (u01 * (100f64).ln()).exp() / 100.0
}

/// `cant` analog — FEM cantilever (Fig. 12: n = 62k, nnz/n = 64.2,
/// naturally banded). We emulate 3-D brick-element elasticity: 3 degrees
/// of freedom per node, nodes coupled to their 27-point neighborhood, all
/// 3x3 dof blocks dense. Interior rows get 81 nonzeros; the matrix is
/// symmetric positive definite and, in the natural node ordering, banded —
/// which is why the paper finds MPK works well on it.
///
/// `nx, ny, nz` are node counts; rows = `3 * nx * ny * nz`.
pub fn cantilever(nx: usize, ny: usize, nz: usize) -> Csr {
    let nodes = nx * ny * nz;
    let n = 3 * nodes;
    let mut c = Coo::new(n, n);
    c.reserve(81 * n / 2);
    let idx = |i: usize, j: usize, k: usize| (i * ny + j) * nz + k;
    // Stiffness-matrix conditioning: the diagonal equals the absolute
    // off-diagonal row sum plus a small elastic "support" term, giving the
    // near-singular smooth modes (and hundreds of GMRES iterations) real
    // FEM cantilevers exhibit.
    let mut diag = vec![0.0f64; n];
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                let u = idx(i, j, k);
                for di in -1i64..=1 {
                    for dj in -1i64..=1 {
                        for dk in -1i64..=1 {
                            if di == 0 && dj == 0 && dk == 0 {
                                continue;
                            }
                            let (ni, nj, nk) = (i as i64 + di, j as i64 + dj, k as i64 + dk);
                            if ni < 0
                                || nj < 0
                                || nk < 0
                                || ni >= nx as i64
                                || nj >= ny as i64
                                || nk >= nz as i64
                            {
                                continue;
                            }
                            let w = idx(ni as usize, nj as usize, nk as usize);
                            let dist = (di.abs() + dj.abs() + dk.abs()) as f64;
                            // thin-beam anisotropy: the cantilever is much
                            // stiffer along its axis than across it, which
                            // packs the low spectrum densely (slow Krylov
                            // convergence, like the real cant matrix)
                            let aniso =
                                0.03f64.powi(di.abs() as i32) * 0.2f64.powi(dj.abs() as i32);
                            let coeff = aniso * edge_coeff(u, w);
                            for a in 0..3usize {
                                for b in 0..3usize {
                                    let base = if a == b { -1.0 } else { -0.25 };
                                    let val = coeff * base / (1.0 + dist);
                                    c.add(3 * u + a, 3 * w + b, val);
                                    diag[3 * u + a] += val.abs();
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    for (r, &d) in diag.iter().enumerate() {
        c.add(r, r, d + 0.01);
    }
    c.to_csr()
}

/// `G3_circuit` analog — circuit simulation (Fig. 12: n = 1.58M,
/// nnz/n = 4.8, very irregular under natural ordering). Construction:
/// nodes mostly connect to a few *random nearby* nodes (local nets) plus a
/// small fraction of *long-range* nets spanning the whole index space —
/// so the natural block-row distribution has a terrible surface-to-volume
/// ratio that partitioning dramatically improves, exactly the behaviour of
/// Fig. 6's G3_circuit panel. Symmetric and diagonally dominant.
pub fn circuit(n: usize, seed: u64) -> Csr {
    let mut rng = SmallRng::seed_from_u64(seed);
    // Scramble node labels: real netlists carry no index locality, which is
    // exactly why the paper's G3_circuit has a terrible surface-to-volume
    // ratio under the natural ordering (Fig. 6) until RCM/k-way rescue it.
    let mut label: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        label.swap(i, j);
    }
    let mut c = Coo::new(n, n);
    c.reserve(6 * n);
    let mut degree = vec![0.0f64; n];
    // Bounded fan-in like a real netlist: without a cap, random hub nodes
    // blow up the ELLPACK width (padding is priced like real data) and the
    // SpMV cost loses the real matrix's character.
    let mut conn = vec![0u8; n];
    const MAX_DEG: u8 = 7;
    let add_edge =
        |c: &mut Coo, degree: &mut [f64], conn: &mut [u8], a: usize, b: usize, w: f64| {
            if a != b && conn[a] < MAX_DEG && conn[b] < MAX_DEG {
                c.add(label[a] as usize, label[b] as usize, -w);
                c.add(label[b] as usize, label[a] as usize, -w);
                degree[a] += w;
                degree[b] += w;
                conn[a] += 1;
                conn[b] += 1;
            }
        };
    for v in 0..n {
        // ~1.6 local nets per node (gives ~4.8 nnz/row with both directions
        // plus the diagonal).
        let nlocal = if rng.gen_bool(0.6) { 2 } else { 1 };
        for _ in 0..nlocal {
            // neighbor within a window; window size scales with sqrt(n) to
            // mimic a 2-D-ish layout locality.
            let win = ((n as f64).sqrt() as usize).max(4);
            let off = rng.gen_range(1..=win);
            let b = if rng.gen_bool(0.5) { v.saturating_sub(off) } else { (v + off).min(n - 1) };
            add_edge(&mut c, &mut degree, &mut conn, v, b, 1.0 + rng.gen::<f64>());
        }
        // 5% long-range nets (power rails / global signals).
        if rng.gen_bool(0.05) {
            let b = rng.gen_range(0..n);
            add_edge(&mut c, &mut degree, &mut conn, v, b, 0.5 + rng.gen::<f64>());
        }
    }
    // Diagonally dominant diagonal (ground conductance keeps it SPD).
    for v in 0..n {
        c.add(label[v] as usize, label[v] as usize, degree[v] + 0.005);
    }
    c.to_csr()
}

/// Circuit analog **with hub nets**: like [`circuit`] but without the
/// fan-in cap, plus a few clock-tree-like nets touching hundreds of
/// nodes. Real netlists contain such high-fanout nets; they wreck pure
/// ELLPACK storage (one hub row sets every row's slot count), which is
/// what the HYB format exists for.
pub fn circuit_hubbed(n: usize, seed: u64) -> Csr {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xDEADBEEF);
    let base = circuit(n, seed);
    let mut c = Coo::new(n, n);
    c.reserve(base.nnz() + 8 * 260);
    let mut extra_deg = vec![0.0f64; n];
    // a handful of high-fanout nets (clock trees / power rails)
    let nhubs = (n / 5000).clamp(2, 8);
    for _ in 0..nhubs {
        let hub = rng.gen_range(0..n);
        let fanout = rng.gen_range(120..260);
        for _ in 0..fanout {
            let b = rng.gen_range(0..n);
            if b != hub {
                let w = 0.2 + rng.gen::<f64>();
                c.add(hub, b, -w);
                c.add(b, hub, -w);
                extra_deg[hub] += w;
                extra_deg[b] += w;
            }
        }
    }
    for i in 0..n {
        let (cols, vals) = base.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            // bump the diagonal to absorb the new edges' weight
            let v = if i == j as usize { v + extra_deg[i] } else { v };
            c.add(i, j as usize, v);
        }
    }
    c.to_csr()
}

/// `dielFilterV2real` analog — FEM electromagnetics (Fig. 12: n = 1.16M,
/// nnz/n = 41.9). Emulated as a 3-D vector-element mesh: 2 unknowns per
/// node coupled across the 27-point neighborhood with indefinite-leaning
/// off-diagonal weights (EM stiffness-minus-mass character), giving ~54
/// nnz/row interior and a banded-but-wide profile. Symmetric.
pub fn diel_filter(nx: usize, ny: usize, nz: usize) -> Csr {
    diel_filter_with(nx, ny, nz, 0.675)
}

/// [`diel_filter`] with an explicit diagonal "mass shave" factor: the
/// diagonal is `shave * sum|offdiag| + coupling`; below ~0.9 the matrix
/// goes indefinite (deeper shaves = harder GMRES problems). Exposed for
/// the conditioning ablation benches.
pub fn diel_filter_with(nx: usize, ny: usize, nz: usize, shave: f64) -> Csr {
    let nodes = nx * ny * nz;
    let n = 2 * nodes;
    let mut c = Coo::new(n, n);
    c.reserve(54 * n / 2);
    let idx = |i: usize, j: usize, k: usize| (i * ny + j) * nz + k;
    // Stiffness-minus-mass character: diagonal barely above the absolute
    // off-diagonal row sum so the spectrum reaches close to zero (EM FEM
    // systems make GMRES work hard: the paper needs ~176 restarts of
    // GMRES(180) on the real matrix).
    let mut diag = vec![0.0f64; n];
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                let u = idx(i, j, k);
                for di in -1i64..=1 {
                    for dj in -1i64..=1 {
                        for dk in -1i64..=1 {
                            if di == 0 && dj == 0 && dk == 0 {
                                continue;
                            }
                            let (ni, nj, nk) = (i as i64 + di, j as i64 + dj, k as i64 + dk);
                            if ni < 0
                                || nj < 0
                                || nk < 0
                                || ni >= nx as i64
                                || nj >= ny as i64
                                || nk >= nz as i64
                            {
                                continue;
                            }
                            let w = idx(ni as usize, nj as usize, nk as usize);
                            let dist = (di * di + dj * dj + dk * dk) as f64;
                            // layered-dielectric anisotropy
                            let aniso = 0.08f64.powi(di.abs() as i32);
                            let coeff = aniso * edge_coeff(u, w);
                            for a in 0..2usize {
                                for b in 0..2usize {
                                    // stiffness minus a mass-like term: mildly
                                    // oscillating sign with distance
                                    let base = if a == b { -1.0 } else { -0.3 };
                                    let val = coeff * base * (1.2 - 0.2 * dist);
                                    c.add(2 * u + a, 2 * w + b, val);
                                    diag[2 * u + a] += val.abs();
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    for (r, &d) in diag.iter().enumerate() {
        // the intra-node coupling sits on the 2x2 diagonal block
        let other = r ^ 1;
        c.add(r, other, 0.4);
        // stiffness MINUS mass: shaving a slice off the diagonal pushes a
        // thin band of the spectrum below zero — EM filter matrices are
        // mildly indefinite, which is what makes the real dielFilter need
        // very many GMRES restarts
        c.add(r, r, shave * d + 0.4);
    }
    c.to_csr()
}

/// `nlpkkt120` analog — KKT optimization matrix (Fig. 12: n = 3.54M,
/// nnz/n = 26.9, saddle-point). Built as the symmetric indefinite block
/// system `[[H, A^T], [A, -delta I]]` with `H` a (shifted) 3-D Laplacian
/// Hessian and `A` a 1-point-per-constraint sampling operator; `delta`
/// regularizes so GMRES converges without a preconditioner at test scale.
pub fn kkt(nx: usize, ny: usize, nz: usize) -> Csr {
    let h = laplace3d(nx, ny, nz);
    let nh = h.nrows();
    let ncon = nh / 3; // one constraint per three states
    let n = nh + ncon;
    let mut c = Coo::new(n, n);
    c.reserve(h.nnz() + 8 * ncon + n);
    // H block (shifted to improve conditioning like an interior-point
    // barrier Hessian).
    for i in 0..nh {
        let (cols, vals) = h.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            c.add(i, j as usize, v);
        }
        c.add(i, i, 0.02);
    }
    // A couples each constraint row to three consecutive states.
    for r in 0..ncon {
        for t in 0..3usize {
            let s = 3 * r + t;
            if s < nh {
                let w = (0.2 + 3.0 * edge_coeff(r, s)) * (1.0 + 0.3 * t as f64);
                c.add(nh + r, s, w); // A
                c.add(s, nh + r, w); // A^T
            }
        }
        c.add(nh + r, nh + r, -0.02); // -delta I regularization
    }
    c.to_csr()
}

/// Random sparse matrix with about `row_nnz` off-diagonal entries per row
/// and a dominant diagonal — well-conditioned, nonsymmetric, for tests.
pub fn random_diag_dominant(n: usize, row_nnz: usize, seed: u64) -> Csr {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut c = Coo::new(n, n);
    c.reserve(n * (row_nnz + 1));
    for i in 0..n {
        let mut rowsum = 0.0;
        for _ in 0..row_nnz {
            let j = rng.gen_range(0..n);
            if j != i {
                let v: f64 = rng.gen_range(-1.0..1.0);
                c.add(i, j, v);
                rowsum += v.abs();
            }
        }
        c.add(i, i, rowsum + 1.0 + rng.gen::<f64>());
    }
    c.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laplace2d_properties() {
        let a = laplace2d(10, 10);
        assert_eq!(a.nrows(), 100);
        assert!(a.is_structurally_symmetric());
        assert_eq!(a.get(0, 0), 4.0);
        assert_eq!(a.nnz(), 100 + 2 * (2 * 10 * 9)); // diag + 2 per interior edge
    }

    #[test]
    fn laplace3d_row_sums_nonneg() {
        let a = laplace3d(4, 4, 4);
        // Laplacian row sums are >= 0 (boundary rows positive).
        for i in 0..a.nrows() {
            let s: f64 = a.row(i).1.iter().sum();
            assert!(s >= -1e-12);
        }
    }

    #[test]
    fn convection_diffusion_is_nonsymmetric() {
        let a = convection_diffusion(6, 6, 2.0);
        assert!((a.get(1, 0) - a.get(0, 1)).abs() > 0.5);
        // rows remain weakly diagonally dominant
        for i in 0..a.nrows() {
            let (cols, vals) = a.row(i);
            let mut diag = 0.0;
            let mut off = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                if c as usize == i {
                    diag = v;
                } else {
                    off += v.abs();
                }
            }
            assert!(diag >= off - 1e-12, "row {i}: {diag} < {off}");
        }
    }

    #[test]
    fn cantilever_density_matches_paper_character() {
        let a = cantilever(6, 6, 6);
        assert_eq!(a.nrows(), 3 * 216);
        // interior rows have 81 nnz; average should be in the 50-81 range
        let avg = a.avg_row_nnz();
        assert!(avg > 45.0 && avg <= 81.0, "avg nnz/row {avg}");
        assert!(a.is_structurally_symmetric());
        // banded in natural order: bandwidth ~ 3 * (ny*nz + nz + 1)
        assert!(a.bandwidth() <= 3 * (6 * 6 + 6 + 1) + 3);
    }

    #[test]
    fn circuit_density_matches_paper_character() {
        let a = circuit(4000, 7);
        let avg = a.avg_row_nnz();
        assert!(avg > 3.0 && avg < 8.0, "avg nnz/row {avg}");
        assert!(a.is_structurally_symmetric());
        // has at least one genuinely long-range edge
        assert!(a.bandwidth() > 1000, "bandwidth {}", a.bandwidth());
    }

    #[test]
    fn circuit_is_diagonally_dominant() {
        let a = circuit(500, 3);
        for i in 0..a.nrows() {
            let (cols, vals) = a.row(i);
            let mut diag = 0.0;
            let mut off = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                if c as usize == i {
                    diag = v;
                } else {
                    off += v.abs();
                }
            }
            assert!(diag > off, "row {i} not dominant");
        }
    }

    #[test]
    fn circuit_hubbed_has_hub_rows() {
        let a = circuit_hubbed(20_000, 3);
        assert!(a.max_row_nnz() > 100, "max row {}", a.max_row_nnz());
        assert!(a.avg_row_nnz() < 10.0);
        assert!(a.is_structurally_symmetric());
        // still diagonally dominant (solvable)
        for i in 0..a.nrows() {
            let (cols, vals) = a.row(i);
            let mut diag = 0.0;
            let mut off = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                if c as usize == i {
                    diag = v;
                } else {
                    off += v.abs();
                }
            }
            assert!(diag > off - 1e-9, "row {i}");
        }
    }

    #[test]
    fn diel_filter_density() {
        let a = diel_filter(5, 5, 5);
        assert_eq!(a.nrows(), 250);
        let avg = a.avg_row_nnz();
        assert!(avg > 30.0 && avg <= 54.0, "avg nnz/row {avg}");
        assert!(a.is_structurally_symmetric());
    }

    #[test]
    fn kkt_is_saddle_point() {
        let a = kkt(4, 4, 4);
        let nh = 64;
        assert!(a.is_structurally_symmetric());
        // trailing block diagonal is negative (indefinite!)
        assert!(a.get(nh, nh) < 0.0);
        // Hessian diagonal positive
        assert!(a.get(0, 0) > 0.0);
    }

    #[test]
    fn random_diag_dominant_is_dominant() {
        let a = random_diag_dominant(200, 5, 3);
        for i in 0..200 {
            let (cols, vals) = a.row(i);
            let mut diag = 0.0;
            let mut off = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                if c as usize == i {
                    diag = v;
                } else {
                    off += v.abs();
                }
            }
            assert!(diag > off);
        }
    }

    #[test]
    fn generators_deterministic() {
        assert_eq!(circuit(300, 5), circuit(300, 5));
        assert_eq!(random_diag_dominant(50, 3, 1), random_diag_dominant(50, 3, 1));
    }
}
