//! Reverse Cuthill–McKee reordering — the paper's "RCM" ordering (§IV-B),
//! standing in for HSL MC60.
//!
//! RCM relabels vertices in reverse breadth-first order from a
//! pseudo-peripheral root, visiting neighbors in increasing-degree order.
//! It concentrates nonzeros near the diagonal, which shrinks the MPK
//! boundary sets of banded-ish matrices (Fig. 6's RCM curves).

use crate::graph::Graph;
use crate::Csr;

/// Compute the RCM permutation of `a`'s symmetrized pattern.
///
/// Returns `perm` with `perm[new] = old`: row/column `perm[i]` of the
/// original matrix becomes row/column `i` of the reordered one. Handles
/// disconnected graphs by restarting from a fresh pseudo-peripheral root
/// per component.
pub fn rcm_permutation(a: &Csr) -> Vec<usize> {
    let g = Graph::from_csr(a);
    let n = g.nvertices();
    let mut visited = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);

    // Iterate components in vertex order for determinism.
    for seed in 0..n {
        if visited[seed] {
            continue;
        }
        let root = pseudo_peripheral_in_component(&g, seed, &visited);
        // Cuthill-McKee BFS with degree-sorted neighbor visits.
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(root as u32);
        visited[root] = true;
        let mut nbrs: Vec<u32> = Vec::new();
        while let Some(u) = queue.pop_front() {
            order.push(u as usize);
            nbrs.clear();
            nbrs.extend(g.neighbors(u as usize).iter().filter(|&&w| !visited[w as usize]));
            nbrs.sort_by_key(|&w| (g.degree(w as usize), w));
            for &w in &nbrs {
                visited[w as usize] = true;
                queue.push_back(w);
            }
        }
    }
    order.reverse();
    order
}

/// Pseudo-peripheral search restricted to the unvisited component of `seed`.
fn pseudo_peripheral_in_component(g: &Graph, seed: usize, visited: &[bool]) -> usize {
    // BFS that ignores visited vertices.
    let bfs = |root: usize| -> (Vec<u32>, usize) {
        let n = g.nvertices();
        let mut depth = vec![usize::MAX; n];
        let mut order = vec![root as u32];
        depth[root] = 0;
        let mut head = 0usize;
        let mut ecc = 0usize;
        while head < order.len() {
            let u = order[head] as usize;
            head += 1;
            for &w in g.neighbors(u) {
                let w = w as usize;
                if depth[w] == usize::MAX && !visited[w] {
                    depth[w] = depth[u] + 1;
                    ecc = ecc.max(depth[w]);
                    order.push(w as u32);
                }
            }
        }
        (order, ecc)
    };

    let mut root = seed;
    let (mut order, mut ecc) = bfs(root);
    for _ in 0..8 {
        // deepest, minimum-degree candidate
        let last = *order.last().unwrap() as usize;
        let mut cand = last;
        for &v in order.iter().rev().take(16) {
            if g.degree(v as usize) < g.degree(cand) {
                cand = v as usize;
            }
        }
        let (o2, e2) = bfs(cand);
        if e2 > ecc {
            root = cand;
            order = o2;
            ecc = e2;
        } else {
            return cand;
        }
    }
    root
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perm::permute_symmetric;
    use crate::Coo;

    #[test]
    fn rcm_is_permutation() {
        let a = crate::gen::laplace2d(7, 9);
        let p = rcm_permutation(&a);
        let mut seen = [false; 63];
        for &v in &p {
            assert!(!seen[v]);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn rcm_reduces_bandwidth_of_shuffled_band() {
        // Take a path graph (bandwidth 1), shuffle it, verify RCM restores
        // a small bandwidth.
        let n = 50;
        let mut c = Coo::new(n, n);
        // deterministic shuffle via multiplicative map (17 coprime to 50)
        let label = |i: usize| (i * 17 + 3) % n;
        for i in 0..n {
            c.add(label(i), label(i), 4.0);
            if i + 1 < n {
                c.add(label(i), label(i + 1), -1.0);
                c.add(label(i + 1), label(i), -1.0);
            }
        }
        let a = c.to_csr();
        assert!(a.bandwidth() > 5, "shuffle should destroy the band");
        let p = rcm_permutation(&a);
        let b = permute_symmetric(&a, &p);
        assert_eq!(b.bandwidth(), 1, "RCM must recover the path band");
    }

    #[test]
    fn rcm_on_grid_beats_random_labeling() {
        let a = crate::gen::laplace2d(12, 12);
        let p = rcm_permutation(&a);
        let b = permute_symmetric(&a, &p);
        // grid natural ordering bandwidth is 12; RCM should be close.
        assert!(b.bandwidth() <= 14, "rcm bandwidth {}", b.bandwidth());
    }

    #[test]
    fn rcm_handles_disconnected() {
        let mut c = Coo::new(6, 6);
        c.add(0, 1, 1.0);
        c.add(1, 0, 1.0);
        c.add(4, 5, 1.0);
        c.add(5, 4, 1.0);
        for i in 0..6 {
            c.add(i, i, 1.0);
        }
        let p = rcm_permutation(&c.to_csr());
        assert_eq!(p.len(), 6);
        let mut s = p.clone();
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2, 3, 4, 5]);
    }
}
