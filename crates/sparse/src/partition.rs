//! K-way graph partitioning — the paper's "KWY" ordering (METIS stand-in).
//!
//! The paper distributes `A` across GPUs either in natural/RCM block-row
//! slices or with METIS's k-way partitioning, which "minimizes the edge-cut
//! and balances the load" (§IV-B, footnote 3). We implement a deterministic
//! greedy-growing partitioner with Kernighan–Lin-style boundary refinement:
//! far from METIS-quality on hard graphs, but it reproduces the qualitative
//! behaviour Fig. 6/7 depend on — much smaller surfaces than natural order
//! on irregular matrices, slightly worse than RCM on naturally banded ones.

use crate::graph::Graph;
use crate::Csr;

/// Partitioning of the rows of a matrix across `nparts` devices.
#[derive(Debug, Clone)]
pub struct Partition {
    /// `part[v]` = owning part of row `v`.
    pub part: Vec<u32>,
    /// Number of parts.
    pub nparts: usize,
}

impl Partition {
    /// Rows owned by part `p`, in ascending order.
    pub fn rows_of(&self, p: usize) -> Vec<usize> {
        self.part.iter().enumerate().filter_map(|(v, &q)| (q as usize == p).then_some(v)).collect()
    }

    /// Sizes of all parts.
    pub fn sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.nparts];
        for &p in &self.part {
            s[p as usize] += 1;
        }
        s
    }

    /// Number of edges of the symmetrized graph crossing parts.
    pub fn edge_cut(&self, a: &Csr) -> usize {
        let g = Graph::from_csr(a);
        let mut cut = 0usize;
        for v in 0..g.nvertices() {
            for &w in g.neighbors(v) {
                if self.part[v] != self.part[w as usize] {
                    cut += 1;
                }
            }
        }
        cut / 2
    }

    /// Imbalance factor: max part size / ideal size.
    pub fn imbalance(&self) -> f64 {
        let sizes = self.sizes();
        let ideal = self.part.len() as f64 / self.nparts as f64;
        sizes.into_iter().map(|s| s as f64 / ideal).fold(0.0, f64::max)
    }
}

/// Contiguous block-row partition ("natural"/RCM distribution: each GPU
/// gets about an equal number of rows, §IV-B footnote 2).
pub fn block_partition(n: usize, nparts: usize) -> Partition {
    assert!(nparts >= 1);
    let mut part = vec![0u32; n];
    for (v, p) in part.iter_mut().enumerate() {
        // distribute remainder rows one per leading part, like MPI block
        *p = ((v * nparts) / n.max(1)) as u32;
    }
    Partition { part, nparts }
}

/// Greedy-growing k-way partition with boundary refinement.
///
/// Deterministic for a fixed input. `refine_passes` KL/FM-style sweeps move
/// boundary vertices to the neighbouring part with maximal gain subject to
/// a 3% balance tolerance.
pub fn kway_partition(a: &Csr, nparts: usize, refine_passes: usize) -> Partition {
    assert!(nparts >= 1);
    let g = Graph::from_csr(a);
    let n = g.nvertices();
    if nparts == 1 || n == 0 {
        return Partition { part: vec![0; n], nparts };
    }
    let target = n.div_ceil(nparts);

    // --- seeds: farthest-point sampling by BFS hops ---
    let mut seeds = Vec::with_capacity(nparts);
    let first = g.pseudo_peripheral(0);
    seeds.push(first);
    let mut mindist = bfs_dist(&g, first);
    for _ in 1..nparts {
        // farthest vertex from current seed set (ties -> smallest index)
        let mut best = 0usize;
        let mut bestd = 0usize;
        for (v, &d) in mindist.iter().enumerate() {
            let d = if d == usize::MAX { n } else { d };
            if d > bestd {
                bestd = d;
                best = v;
            }
        }
        seeds.push(best);
        let dn = bfs_dist(&g, best);
        for v in 0..n {
            mindist[v] = mindist[v].min(dn[v]);
        }
    }

    // --- balanced multi-source growth ---
    let mut part = vec![u32::MAX; n];
    let mut sizes = vec![0usize; nparts];
    let mut frontiers: Vec<std::collections::VecDeque<u32>> =
        (0..nparts).map(|_| std::collections::VecDeque::new()).collect();
    for (p, &s) in seeds.iter().enumerate() {
        if part[s] == u32::MAX {
            part[s] = p as u32;
            sizes[p] += 1;
            frontiers[p].push_back(s as u32);
        }
    }
    let mut assigned: usize = sizes.iter().sum();
    while assigned < n {
        let mut progressed = false;
        // round-robin, smallest part first, to keep sizes even
        let mut order: Vec<usize> = (0..nparts).collect();
        order.sort_by_key(|&p| sizes[p]);
        for p in order {
            if sizes[p] > target {
                continue;
            }
            // grow one vertex for part p
            while let Some(u) = frontiers[p].pop_front() {
                let mut grabbed = false;
                for &w in g.neighbors(u as usize) {
                    if part[w as usize] == u32::MAX {
                        part[w as usize] = p as u32;
                        sizes[p] += 1;
                        assigned += 1;
                        frontiers[p].push_back(w);
                        grabbed = true;
                        progressed = true;
                        break;
                    }
                }
                if grabbed {
                    // u may have more unassigned neighbors: revisit later
                    frontiers[p].push_front(u);
                    break;
                }
            }
        }
        if !progressed {
            // disconnected remainder: assign unreached vertices to the
            // smallest parts in index order
            for v in 0..n {
                if part[v] == u32::MAX {
                    let p = (0..nparts).min_by_key(|&p| sizes[p]).unwrap();
                    part[v] = p as u32;
                    sizes[p] += 1;
                    assigned += 1;
                    frontiers[p].push_back(v as u32);
                }
            }
        }
    }

    let mut partition = Partition { part, nparts };

    // --- boundary refinement ---
    let max_size = (target as f64 * 1.03).ceil() as usize + 1;
    for _ in 0..refine_passes {
        let mut moved = 0usize;
        for v in 0..n {
            let pv = partition.part[v] as usize;
            if sizes[pv] <= 1 {
                continue;
            }
            // count neighbor parts
            let mut counts = vec![0i64; nparts];
            for &w in g.neighbors(v) {
                counts[partition.part[w as usize] as usize] += 1;
            }
            let home = counts[pv];
            let mut best_gain = 0i64;
            let mut best_p = pv;
            for (q, &c) in counts.iter().enumerate() {
                if q != pv && sizes[q] < max_size {
                    let gain = c - home;
                    if gain > best_gain
                        || (gain == best_gain && gain > 0 && sizes[q] < sizes[best_p])
                    {
                        best_gain = gain;
                        best_p = q;
                    }
                }
            }
            if best_p != pv && best_gain > 0 {
                partition.part[v] = best_p as u32;
                sizes[pv] -= 1;
                sizes[best_p] += 1;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
    partition
}

/// Recursive-bisection k-way partitioning — the alternative the paper's
/// footnote 3 tested against the direct k-way growth ("the k-way
/// partitioning that minimizes the edge-cut often gave smaller surfaces
/// and better load balances"). Each level splits a vertex subset in two by
/// a BFS sweep from a pseudo-peripheral vertex, cutting at the median;
/// recursion depth follows the binary decomposition of `nparts`.
pub fn recursive_bisection(a: &Csr, nparts: usize, refine_passes: usize) -> Partition {
    assert!(nparts >= 1);
    let g = Graph::from_csr(a);
    let n = g.nvertices();
    let mut part = vec![0u32; n];
    if nparts > 1 {
        let all: Vec<u32> = (0..n as u32).collect();
        bisect(&g, &all, 0, nparts, &mut part);
    }
    let mut partition = Partition { part, nparts };
    // reuse the same boundary refinement as the direct k-way method
    refine(&g, &mut partition, refine_passes);
    partition
}

/// Split `verts` into `nparts` labels starting at `base`, writing labels
/// into `part`.
fn bisect(g: &Graph, verts: &[u32], base: u32, nparts: usize, part: &mut [u32]) {
    if nparts == 1 || verts.len() <= 1 {
        for &v in verts {
            part[v as usize] = base;
        }
        return;
    }
    let left_parts = nparts / 2;
    let right_parts = nparts - left_parts;
    // target balanced by sub-part count
    let left_size = verts.len() * left_parts / nparts;

    // BFS sweep order from a pseudo-peripheral vertex of this subset
    let inset: std::collections::HashSet<u32> = verts.iter().copied().collect();
    let root = verts[0] as usize;
    let mut order: Vec<u32> = Vec::with_capacity(verts.len());
    let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(root as u32);
    seen.insert(root as u32);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &w in g.neighbors(u as usize) {
            if inset.contains(&w) && seen.insert(w) {
                queue.push_back(w);
            }
        }
        // disconnected remainder: append any unseen vertex
        if queue.is_empty() && order.len() < verts.len() {
            if let Some(&v) = verts.iter().find(|&&v| !seen.contains(&v)) {
                seen.insert(v);
                queue.push_back(v);
            }
        }
    }
    let (left, right) = order.split_at(left_size.clamp(1, order.len().saturating_sub(1)).max(1));
    bisect(g, left, base, left_parts, part);
    bisect(g, right, base + left_parts as u32, right_parts, part);
}

/// KL/FM-style boundary refinement shared by both partitioners.
fn refine(g: &Graph, partition: &mut Partition, passes: usize) {
    let n = g.nvertices();
    let nparts = partition.nparts;
    let mut sizes = partition.sizes();
    let target = n.div_ceil(nparts);
    let max_size = (target as f64 * 1.03).ceil() as usize + 1;
    for _ in 0..passes {
        let mut moved = 0usize;
        for v in 0..n {
            let pv = partition.part[v] as usize;
            if sizes[pv] <= 1 {
                continue;
            }
            let mut counts = vec![0i64; nparts];
            for &w in g.neighbors(v) {
                counts[partition.part[w as usize] as usize] += 1;
            }
            let home = counts[pv];
            let mut best_gain = 0i64;
            let mut best_p = pv;
            for (q, &c) in counts.iter().enumerate() {
                if q != pv && sizes[q] < max_size {
                    let gain = c - home;
                    if gain > best_gain {
                        best_gain = gain;
                        best_p = q;
                    }
                }
            }
            if best_p != pv && best_gain > 0 {
                partition.part[v] = best_p as u32;
                sizes[pv] -= 1;
                sizes[best_p] += 1;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
}

fn bfs_dist(g: &Graph, root: usize) -> Vec<usize> {
    let (levels, _) = g.bfs_levels(root);
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_partition_is_balanced() {
        let p = block_partition(10, 3);
        let sizes = p.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4), "{sizes:?}");
        // contiguity
        for w in p.part.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn kway_covers_and_balances() {
        let a = crate::gen::laplace2d(16, 16);
        let p = kway_partition(&a, 3, 4);
        assert_eq!(p.part.len(), 256);
        assert!(p.part.iter().all(|&q| (q as usize) < 3));
        assert!(p.imbalance() < 1.25, "imbalance {}", p.imbalance());
    }

    #[test]
    fn kway_beats_random_cut_on_grid() {
        let a = crate::gen::laplace2d(20, 20);
        let p = kway_partition(&a, 4, 4);
        let cut = p.edge_cut(&a);
        // random 4-way cut of a 20x20 grid ~ 3/4 * 760 = 570; a good one ~ 60.
        assert!(cut < 220, "edge cut {cut} too large");
    }

    #[test]
    fn kway_single_part_trivial() {
        let a = crate::gen::laplace2d(4, 4);
        let p = kway_partition(&a, 1, 2);
        assert!(p.part.iter().all(|&q| q == 0));
        assert_eq!(p.edge_cut(&a), 0);
    }

    #[test]
    fn rows_of_partitions_all_rows() {
        let a = crate::gen::laplace2d(9, 9);
        let p = kway_partition(&a, 3, 2);
        let mut all: Vec<usize> = (0..3).flat_map(|q| p.rows_of(q)).collect();
        all.sort_unstable();
        assert_eq!(all, (0..81).collect::<Vec<_>>());
    }

    #[test]
    fn recursive_bisection_covers_and_balances() {
        let a = crate::gen::laplace2d(16, 16);
        for k in [2usize, 3, 4] {
            let p = recursive_bisection(&a, k, 4);
            assert_eq!(p.part.len(), 256);
            assert!(p.part.iter().all(|&q| (q as usize) < k));
            assert!(p.imbalance() < 1.3, "k={k}: imbalance {}", p.imbalance());
        }
    }

    #[test]
    fn kway_usually_beats_bisection_on_cut() {
        // the paper's footnote 3: direct k-way "often gave smaller
        // surfaces" — check it is at least competitive here
        let a = crate::gen::laplace2d(20, 20);
        let kw = kway_partition(&a, 3, 4).edge_cut(&a);
        let rb = recursive_bisection(&a, 3, 4).edge_cut(&a);
        assert!(kw <= rb * 2, "kway {kw} vs bisection {rb}");
    }

    #[test]
    fn handles_disconnected_graph() {
        // two 3x3 grids with no connection
        let g1 = crate::gen::laplace2d(3, 3);
        let mut coo = crate::Coo::new(18, 18);
        for i in 0..9 {
            let (cols, vals) = g1.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                coo.add(i, c as usize, v);
                coo.add(i + 9, c as usize + 9, v);
            }
        }
        let a = coo.to_csr();
        let p = kway_partition(&a, 2, 2);
        assert_eq!(p.sizes().iter().sum::<usize>(), 18);
        assert!(p.imbalance() < 1.3);
    }
}
