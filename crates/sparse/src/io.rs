//! Matrix Market I/O.
//!
//! The paper's matrices come from the University of Florida collection in
//! Matrix Market format. No network access is assumed — the benchmarks use
//! the synthetic analogs in [`crate::gen`] — but this reader lets the real
//! files be dropped in (`coordinate real/integer/pattern`,
//! `general/symmetric/skew-symmetric`).

use crate::{Coo, Csr, Result, SparseError};
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Symmetry {
    General,
    Symmetric,
    SkewSymmetric,
}

/// Read a Matrix Market file into CSR.
pub fn read_matrix_market(path: impl AsRef<Path>) -> Result<Csr> {
    let f = std::fs::File::open(path)?;
    read_matrix_market_from(BufReader::new(f))
}

/// Read Matrix Market data from any buffered reader.
pub fn read_matrix_market_from(reader: impl BufRead) -> Result<Csr> {
    let mut lines = reader.lines();

    // Header line.
    let header = lines
        .next()
        .ok_or_else(|| SparseError::Parse("empty file".into()))?
        .map_err(SparseError::Io)?;
    let h = header.to_ascii_lowercase();
    let tokens: Vec<&str> = h.split_whitespace().collect();
    if tokens.len() < 5 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(SparseError::Parse(format!("bad header: {header}")));
    }
    if tokens[2] != "coordinate" {
        return Err(SparseError::Parse(format!(
            "only coordinate format supported, got {}",
            tokens[2]
        )));
    }
    let field = tokens[3];
    if !matches!(field, "real" | "integer" | "pattern") {
        return Err(SparseError::Parse(format!("unsupported field type {field}")));
    }
    let symmetry = match tokens[4] {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        "skew-symmetric" => Symmetry::SkewSymmetric,
        other => return Err(SparseError::Parse(format!("unsupported symmetry {other}"))),
    };

    // Size line (skip comments/blank lines).
    let mut size_line = String::new();
    for line in lines.by_ref() {
        let line = line.map_err(SparseError::Io)?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = t.to_string();
        break;
    }
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>().map_err(|e| SparseError::Parse(format!("size line: {e}"))))
        .collect::<Result<_>>()?;
    if dims.len() != 3 {
        return Err(SparseError::Parse(format!("bad size line: {size_line}")));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = Coo::new(nrows, ncols);
    coo.reserve(if symmetry == Symmetry::General { nnz } else { 2 * nnz });
    let mut seen = 0usize;
    for line in lines {
        let line = line.map_err(SparseError::Io)?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: usize = it
            .next()
            .ok_or_else(|| SparseError::Parse("missing row index".into()))?
            .parse()
            .map_err(|e| SparseError::Parse(format!("row index: {e}")))?;
        let j: usize = it
            .next()
            .ok_or_else(|| SparseError::Parse("missing col index".into()))?
            .parse()
            .map_err(|e| SparseError::Parse(format!("col index: {e}")))?;
        let v: f64 = match field {
            "pattern" => 1.0,
            _ => it
                .next()
                .ok_or_else(|| SparseError::Parse("missing value".into()))?
                .parse()
                .map_err(|e| SparseError::Parse(format!("value: {e}")))?,
        };
        if i == 0 || j == 0 {
            return Err(SparseError::Parse("matrix market indices are 1-based".into()));
        }
        coo.push(i - 1, j - 1, v)?;
        match symmetry {
            Symmetry::General => {}
            Symmetry::Symmetric => {
                if i != j {
                    coo.push(j - 1, i - 1, v)?;
                }
            }
            Symmetry::SkewSymmetric => {
                if i != j {
                    coo.push(j - 1, i - 1, -v)?;
                }
            }
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::Parse(format!("expected {nnz} entries, found {seen}")));
    }
    Ok(coo.to_csr())
}

/// Write a matrix in Matrix Market `coordinate real general` format.
pub fn write_matrix_market(a: &Csr, path: impl AsRef<Path>) -> Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(f, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for i in 0..a.nrows() {
        let (cols, vals) = a.row(i);
        for (&c, &v) in cols.iter().zip(vals) {
            writeln!(f, "{} {} {:e}", i + 1, c as usize + 1, v)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_general() {
        let data =
            "%%MatrixMarket matrix coordinate real general\n% a comment\n3 3 2\n1 1 2.5\n3 2 -1\n";
        let m = read_matrix_market_from(Cursor::new(data)).unwrap();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 0), 2.5);
        assert_eq!(m.get(2, 1), -1.0);
    }

    #[test]
    fn parse_symmetric_mirrors() {
        let data = "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 1.0\n2 1 3.0\n";
        let m = read_matrix_market_from(Cursor::new(data)).unwrap();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn parse_skew_symmetric() {
        let data = "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 3.0\n";
        let m = read_matrix_market_from(Cursor::new(data)).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.get(0, 1), -3.0);
    }

    #[test]
    fn parse_pattern() {
        let data = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n";
        let m = read_matrix_market_from(Cursor::new(data)).unwrap();
        assert_eq!(m.get(0, 1), 1.0);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_matrix_market_from(Cursor::new("hello\n")).is_err());
        assert!(read_matrix_market_from(Cursor::new(
            "%%MatrixMarket matrix array real general\n2 2\n"
        ))
        .is_err());
    }

    #[test]
    fn rejects_wrong_count() {
        let data = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
        assert!(read_matrix_market_from(Cursor::new(data)).is_err());
    }

    #[test]
    fn write_read_roundtrip() {
        let a = crate::gen::laplace2d(4, 4);
        let dir = std::env::temp_dir().join("ca_sparse_io_test.mtx");
        write_matrix_market(&a, &dir).unwrap();
        let b = read_matrix_market(&dir).unwrap();
        assert_eq!(a.nnz(), b.nnz());
        for i in 0..a.nrows() {
            let (c1, v1) = a.row(i);
            let (c2, v2) = b.row(i);
            assert_eq!(c1, c2);
            for (x, y) in v1.iter().zip(v2) {
                assert!((x - y).abs() < 1e-12);
            }
        }
        let _ = std::fs::remove_file(dir);
    }
}
