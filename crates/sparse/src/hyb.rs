//! Hybrid ELL + COO format (the CUSP-style layout the paper's related
//! work §II references).
//!
//! Pure ELLPACK pays for its padding: one hub row inflates every row's
//! slot count. HYB stores the first `width` entries of each row in ELL
//! (coalesced on a GPU) and spills the remainder to a COO tail; `width`
//! is chosen so that at most a small fraction of entries spill.

use crate::{Csr, Ell};
use ca_scalar::Scalar;

/// A hybrid ELL + COO sparse matrix, generic over the value type
/// (default `f64`).
#[derive(Debug, Clone)]
pub struct Hyb<T: Scalar = f64> {
    /// The regular part (first `width` entries of each row).
    ell: Ell<T>,
    /// Spilled entries as (row, col, value).
    coo: Vec<(u32, u32, T)>,
}

impl<T: Scalar> Hyb<T> {
    /// Convert from CSR with an explicit ELL width.
    pub fn from_csr_with_width(a: &Csr<T>, width: usize) -> Self {
        let nrows = a.nrows();
        // Build the truncated-CSR for the ELL part.
        let mut row_ptr = vec![0usize; nrows + 1];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        let mut coo = Vec::new();
        for i in 0..nrows {
            let (cols, vals) = a.row(i);
            let keep = cols.len().min(width);
            col_idx.extend_from_slice(&cols[..keep]);
            values.extend_from_slice(&vals[..keep]);
            row_ptr[i + 1] = col_idx.len();
            for k in keep..cols.len() {
                coo.push((i as u32, cols[k], vals[k]));
            }
        }
        let ell_csr = Csr::from_raw(nrows, a.ncols(), row_ptr, col_idx, values);
        Self { ell: Ell::from_csr(&ell_csr), coo }
    }

    /// Convert from CSR, choosing the width at the given row-length
    /// quantile (e.g. `0.95` keeps 95% of rows fully in the ELL part —
    /// a standard HYB heuristic).
    pub fn from_csr(a: &Csr<T>, quantile: f64) -> Self {
        assert!((0.0..=1.0).contains(&quantile));
        let mut lens: Vec<usize> = (0..a.nrows()).map(|i| a.row_nnz(i)).collect();
        lens.sort_unstable();
        let width = if lens.is_empty() {
            0
        } else {
            let idx = ((lens.len() - 1) as f64 * quantile).round() as usize;
            lens[idx].max(1)
        };
        Self::from_csr_with_width(a, width)
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.ell.nrows()
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ell.ncols()
    }

    /// ELL width of the regular part.
    pub fn width(&self) -> usize {
        self.ell.width()
    }

    /// Entries stored in the COO tail.
    pub fn spilled(&self) -> usize {
        self.coo.len()
    }

    /// Total stored nonzeros (both parts, excluding padding).
    pub fn nnz(&self) -> usize {
        self.ell.nnz() + self.coo.len()
    }

    /// Bytes occupied: padded ELL slots plus COO triplets (one `T::BYTES`
    /// value + two 4-byte indices each).
    pub fn bytes(&self) -> usize {
        self.ell.bytes() + self.coo.len() * (8 + T::BYTES)
    }

    /// `y := A x`.
    pub fn spmv(&self, x: &[T], y: &mut [T]) {
        self.ell.spmv(x, y);
        for &(r, c, v) in &self.coo {
            y[r as usize] += v * x[c as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, Coo};

    /// A matrix with one hub row that ruins pure ELL.
    fn hubbed() -> Csr {
        let mut c = Coo::new(50, 50);
        for i in 0..50 {
            c.add(i, i, 2.0);
            if i + 1 < 50 {
                c.add(i, i + 1, -1.0);
            }
        }
        for j in 0..40 {
            c.add(7, j, 0.1); // hub row with 40+ entries
        }
        c.to_csr()
    }

    #[test]
    fn hyb_matches_csr_spmv() {
        let a = hubbed();
        let h = Hyb::from_csr(&a, 0.95);
        let x: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut y1 = vec![0.0; 50];
        let mut y2 = vec![0.0; 50];
        crate::spmv::spmv(&a, &x, &mut y1);
        h.spmv(&x, &mut y2);
        for i in 0..50 {
            assert!((y1[i] - y2[i]).abs() < 1e-13, "row {i}");
        }
        assert_eq!(h.nnz(), a.nnz());
    }

    #[test]
    fn hyb_shrinks_padding_on_hubbed_matrix() {
        let a = hubbed();
        let pure = Ell::from_csr(&a);
        let hyb = Hyb::from_csr(&a, 0.95);
        assert!(hyb.width() < pure.width());
        assert!(hyb.bytes() < pure.bytes() / 2, "hyb {} vs ell {}", hyb.bytes(), pure.bytes());
        assert!(hyb.spilled() > 0);
    }

    #[test]
    fn width_quantile_extremes() {
        let a = hubbed();
        let all = Hyb::from_csr(&a, 1.0);
        assert_eq!(all.spilled(), 0, "quantile 1.0 keeps everything in ELL");
        let h0 = Hyb::from_csr(&a, 0.0);
        assert!(h0.width() >= 1);
        // spmv still exact at both extremes
        let x = vec![1.0; 50];
        let mut y1 = vec![0.0; 50];
        let mut y2 = vec![0.0; 50];
        all.spmv(&x, &mut y1);
        h0.spmv(&x, &mut y2);
        for i in 0..50 {
            assert!((y1[i] - y2[i]).abs() < 1e-13);
        }
    }

    #[test]
    fn regular_matrix_spills_nothing() {
        let a = gen::laplace2d(8, 8);
        let h = Hyb::from_csr(&a, 0.95);
        // 5-point stencil: widths 3..5; the 95th percentile is 5 = max
        assert_eq!(h.spilled(), 0);
        assert_eq!(h.width(), 5);
    }

    #[test]
    fn explicit_width_partition() {
        let a = hubbed();
        let h = Hyb::from_csr_with_width(&a, 2);
        assert_eq!(h.width(), 2);
        assert_eq!(h.nnz(), a.nnz());
        let x = vec![1.0; 50];
        let mut y1 = vec![0.0; 50];
        let mut y2 = vec![0.0; 50];
        crate::spmv::spmv(&a, &x, &mut y1);
        h.spmv(&x, &mut y2);
        for i in 0..50 {
            assert!((y1[i] - y2[i]).abs() < 1e-13);
        }
    }
}
