//! Matrix balancing — the paper's pre-scaling (§VI): "before the iteration
//! starts, the matrix is balanced; namely, the rows are first scaled by
//! their norms, and then the columns are scaled by their norms."
//!
//! Balancing `A` into `B = D_r A D_c` changes the linear system
//! `A x = b` into `B y = D_r b` with `x = D_c y`; [`Balancing`] carries the
//! scalings needed to transform both directions.

use crate::Csr;

/// Row/column scalings produced by [`balance`].
#[derive(Debug, Clone)]
pub struct Balancing {
    /// Row scale factors `d_r` (length nrows).
    pub row_scale: Vec<f64>,
    /// Column scale factors `d_c` (length ncols).
    pub col_scale: Vec<f64>,
}

impl Balancing {
    /// Transform a right-hand side: `b' = D_r b`.
    pub fn scale_rhs(&self, b: &[f64]) -> Vec<f64> {
        b.iter().zip(&self.row_scale).map(|(x, d)| x * d).collect()
    }

    /// Recover the original solution: `x = D_c y`.
    pub fn unscale_solution(&self, y: &[f64]) -> Vec<f64> {
        y.iter().zip(&self.col_scale).map(|(x, d)| x * d).collect()
    }
}

/// Balance `a`: scale each row by the inverse of its 2-norm, then each
/// column of the row-scaled matrix by the inverse of its 2-norm. Zero
/// rows/columns keep scale 1. Returns the balanced matrix and the scalings.
pub fn balance(a: &Csr) -> (Csr, Balancing) {
    let mut b = a.clone();
    let nrows = a.nrows();
    let ncols = a.ncols();

    // Row scaling.
    let mut row_scale = vec![1.0f64; nrows];
    for i in 0..nrows {
        let (_, vals) = a.row(i);
        let nrm = vals.iter().map(|v| v * v).sum::<f64>().sqrt();
        if nrm > 0.0 {
            row_scale[i] = 1.0 / nrm;
        }
    }
    {
        let row_ptr = b.row_ptr().to_vec();
        let vals = b.values_mut();
        for i in 0..nrows {
            for p in row_ptr[i]..row_ptr[i + 1] {
                vals[p] *= row_scale[i];
            }
        }
    }

    // Column scaling of the row-scaled matrix.
    let mut col_sq = vec![0.0f64; ncols];
    {
        let vals = b.values();
        for (p, &c) in b.col_idx().iter().enumerate() {
            col_sq[c as usize] += vals[p] * vals[p];
        }
    }
    let col_scale: Vec<f64> =
        col_sq.into_iter().map(|s| if s > 0.0 { 1.0 / s.sqrt() } else { 1.0 }).collect();
    {
        let col_idx = b.col_idx().to_vec();
        let vals = b.values_mut();
        for (p, &c) in col_idx.iter().enumerate() {
            vals[p] *= col_scale[c as usize];
        }
    }

    (b, Balancing { row_scale, col_scale })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    #[test]
    fn rows_have_unit_norm_after_row_pass() {
        // With a diagonal matrix, both passes together give exactly +-1 entries.
        let mut c = Coo::new(3, 3);
        c.add(0, 0, 10.0);
        c.add(1, 1, -0.01);
        c.add(2, 2, 1e6);
        let (b, _) = balance(&c.to_csr());
        assert!((b.get(0, 0) - 1.0).abs() < 1e-15);
        assert!((b.get(1, 1) + 1.0).abs() < 1e-15);
        assert!((b.get(2, 2) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn column_norms_are_unit() {
        let a = crate::gen::laplace2d(5, 5);
        let (b, _) = balance(&a);
        let mut col_sq = vec![0.0; 25];
        for i in 0..25 {
            let (cols, vals) = b.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                col_sq[c as usize] += v * v;
            }
        }
        for s in col_sq {
            assert!((s.sqrt() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn solution_recovery_roundtrip() {
        // Solve the balanced system exactly on a diagonal matrix and verify
        // unscale_solution recovers the true solution.
        let mut c = Coo::new(2, 2);
        c.add(0, 0, 4.0);
        c.add(1, 1, 0.5);
        let a = c.to_csr();
        let (b, bal) = balance(&a);
        let x_true = [3.0, -2.0];
        let rhs = [4.0 * 3.0, 0.5 * -2.0];
        let rhs_scaled = bal.scale_rhs(&rhs);
        // diagonal solve of balanced system
        let y = [rhs_scaled[0] / b.get(0, 0), rhs_scaled[1] / b.get(1, 1)];
        let x = bal.unscale_solution(&y);
        assert!((x[0] - x_true[0]).abs() < 1e-14);
        assert!((x[1] - x_true[1]).abs() < 1e-14);
    }

    #[test]
    fn zero_row_kept_finite() {
        let mut c = Coo::new(2, 2);
        c.add(0, 0, 2.0);
        // row 1 empty
        let (b, bal) = balance(&c.to_csr());
        assert_eq!(bal.row_scale[1], 1.0);
        assert!(b.values().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn balancing_reduces_condition_spread() {
        // badly scaled 2x2: entries spanning 12 orders of magnitude become O(1)
        let mut c = Coo::new(2, 2);
        c.add(0, 0, 1e12);
        c.add(0, 1, 1.0);
        c.add(1, 0, 1.0);
        c.add(1, 1, 1e-6);
        let (b, _) = balance(&c.to_csr());
        let maxv = b.values().iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let minv = b.values().iter().fold(f64::MAX, |m, v| m.min(v.abs()));
        assert!(maxv / minv < 1e8, "spread {}", maxv / minv);
    }
}
