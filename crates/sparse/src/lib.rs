//! # ca-sparse — sparse-matrix substrate
//!
//! Sparse-matrix infrastructure for the CA-GMRES reproduction:
//!
//! * [`coo`]/[`csr`]/[`ell`] — matrix formats. The paper's GPUs use
//!   ELLPACK for SpMV (Fig. 3 caption); the CPU reference uses CSR.
//! * [`io`] — Matrix Market reader/writer so the real UF-collection
//!   matrices can be used when available.
//! * [`gen`] — synthetic analogs of the paper's four test matrices
//!   (`cant`, `G3_circuit`, `dielFilterV2real`, `nlpkkt120`) plus generic
//!   PDE/random generators.
//! * [`graph`], [`rcm`], [`partition`] — adjacency utilities, reverse
//!   Cuthill-McKee reordering (the HSL MC60 stand-in) and a k-way graph
//!   partitioner (the METIS stand-in), the two orderings of Fig. 6.
//! * [`perm`] — permutation application.
//! * [`balance`] — the row-then-column norm scaling the paper applies
//!   before iterating (§VI).
//! * [`spmv`] — sequential and rayon-parallel SpMV.
//!
//! ```
//! use ca_sparse::{gen, spmv, Ell, Hyb};
//!
//! let a = gen::laplace2d(16, 16);
//! let x = vec![1.0; a.nrows()];
//! let mut y1 = vec![0.0; a.nrows()];
//! let mut y2 = vec![0.0; a.nrows()];
//! spmv::spmv(&a, &x, &mut y1);                  // CSR
//! Ell::from_csr(&a).spmv(&x, &mut y2);          // ELLPACK
//! assert!(y1.iter().zip(&y2).all(|(a, b)| (a - b).abs() < 1e-12));
//!
//! // preprocessing: balancing and a k-way partition
//! let (balanced, _scales) = ca_sparse::balance::balance(&a);
//! let part = ca_sparse::partition::kway_partition(&balanced, 3, 4);
//! assert_eq!(part.sizes().iter().sum::<usize>(), a.nrows());
//! ```

// Numeric kernels index several parallel slices at once; iterator
// rewrites would obscure the stride arithmetic the cost model mirrors.
#![allow(clippy::needless_range_loop)]

pub mod balance;
pub mod coo;
pub mod csr;
pub mod ell;
pub mod gen;
pub mod graph;
pub mod hyb;
pub mod hypergraph;
pub mod io;
pub mod partition;
pub mod perm;
pub mod rcm;
pub mod spmv;

pub use coo::Coo;
pub use csr::Csr;
pub use ell::Ell;
pub use hyb::Hyb;

/// Errors surfaced by sparse-matrix construction and I/O.
#[derive(Debug)]
pub enum SparseError {
    /// An entry lies outside the declared dimensions.
    IndexOutOfBounds { row: usize, col: usize, nrows: usize, ncols: usize },
    /// Matrix Market parsing failure with a human-readable reason.
    Parse(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for SparseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparseError::IndexOutOfBounds { row, col, nrows, ncols } => {
                write!(f, "entry ({row},{col}) outside {nrows}x{ncols} matrix")
            }
            SparseError::Parse(msg) => write!(f, "matrix market parse error: {msg}"),
            SparseError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e)
    }
}

/// Result alias for sparse routines.
pub type Result<T> = std::result::Result<T, SparseError>;
