//! Sparse matrix-vector products.
//!
//! [`spmv`] is the sequential CSR kernel; [`spmv_par`] is the
//! rayon-threaded version standing in for the paper's threaded-MKL CPU
//! baseline (Fig. 3's "CPU" line).

use crate::Csr;
use ca_scalar::Scalar;
use rayon::prelude::*;

/// Sequential `y := A x` from CSR.
pub fn spmv<T: Scalar>(a: &Csr<T>, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), a.ncols());
    assert_eq!(y.len(), a.nrows());
    for i in 0..a.nrows() {
        let (cols, vals) = a.row(i);
        let mut s = T::ZERO;
        for (&c, &v) in cols.iter().zip(vals) {
            s += v * x[c as usize];
        }
        y[i] = s;
    }
}

/// Rayon-parallel `y := A x` from CSR (row-parallel; each output row is
/// owned by exactly one task, so results are deterministic).
pub fn spmv_par<T: Scalar>(a: &Csr<T>, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), a.ncols());
    assert_eq!(y.len(), a.nrows());
    y.par_iter_mut().enumerate().for_each(|(i, yi)| {
        let (cols, vals) = a.row(i);
        let mut s = T::ZERO;
        for (&c, &v) in cols.iter().zip(vals) {
            s += v * x[c as usize];
        }
        *yi = s;
    });
}

/// `y := A^T x` (sequential; used by tests and the KKT generator).
pub fn spmv_transpose<T: Scalar>(a: &Csr<T>, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), a.nrows());
    assert_eq!(y.len(), a.ncols());
    y.iter_mut().for_each(|v| *v = T::ZERO);
    for i in 0..a.nrows() {
        let (cols, vals) = a.row(i);
        let xi = x[i];
        if xi != T::ZERO {
            for (&c, &v) in cols.iter().zip(vals) {
                y[c as usize] += v * xi;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn sample() -> Csr {
        let mut c = Coo::new(3, 3);
        c.add(0, 0, 2.0);
        c.add(0, 2, 1.0);
        c.add(1, 1, -1.0);
        c.add(2, 0, 3.0);
        c.add(2, 2, 4.0);
        c.to_csr()
    }

    #[test]
    fn spmv_known_result() {
        let a = sample();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        spmv(&a, &x, &mut y);
        assert_eq!(y, [5.0, -2.0, 15.0]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let a = crate::gen::laplace2d(20, 20);
        let x: Vec<f64> = (0..400).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y1 = vec![0.0; 400];
        let mut y2 = vec![0.0; 400];
        spmv(&a, &x, &mut y1);
        spmv_par(&a, &x, &mut y2);
        assert_eq!(y1, y2); // bitwise: same per-row summation order
    }

    #[test]
    fn transpose_spmv_matches_explicit_transpose() {
        let a = sample();
        let at = a.transpose();
        let x = [1.0, -1.0, 0.5];
        let mut y1 = [0.0; 3];
        let mut y2 = [0.0; 3];
        spmv_transpose(&a, &x, &mut y1);
        spmv(&at, &x, &mut y2);
        for i in 0..3 {
            assert!((y1[i] - y2[i]).abs() < 1e-14);
        }
    }
}
