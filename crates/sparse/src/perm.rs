//! Permutation application to matrices and vectors.

use crate::{Coo, Csr};

/// Symmetrically permute `a`: `B = P A P^T` where `perm[new] = old`, i.e.
/// `b[i, j] = a[perm[i], perm[j]]`.
pub fn permute_symmetric(a: &Csr, perm: &[usize]) -> Csr {
    let n = a.nrows();
    assert_eq!(a.ncols(), n);
    assert_eq!(perm.len(), n);
    let mut inv = vec![0u32; n];
    for (new, &old) in perm.iter().enumerate() {
        inv[old] = new as u32;
    }
    let mut coo = Coo::new(n, n);
    coo.reserve(a.nnz());
    for (new_row, &old_row) in perm.iter().enumerate() {
        let (cols, vals) = a.row(old_row);
        for (&c, &v) in cols.iter().zip(vals) {
            coo.add(new_row, inv[c as usize] as usize, v);
        }
    }
    coo.to_csr()
}

/// Permute a vector: `out[new] = x[perm[new]]`.
pub fn permute_vec(x: &[f64], perm: &[usize]) -> Vec<f64> {
    perm.iter().map(|&old| x[old]).collect()
}

/// Inverse-permute a vector: `out[perm[new]] = x[new]` (undo
/// [`permute_vec`]).
pub fn unpermute_vec(x: &[f64], perm: &[usize]) -> Vec<f64> {
    let mut out = vec![0.0; x.len()];
    for (new, &old) in perm.iter().enumerate() {
        out[old] = x[new];
    }
    out
}

/// Validate that `perm` is a permutation of `0..n`.
pub fn is_permutation(perm: &[usize], n: usize) -> bool {
    if perm.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &p in perm {
        if p >= n || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_permutation_relabels() {
        // A = diag(10, 20, 30) with a(0,1) = 5
        let mut c = Coo::new(3, 3);
        c.add(0, 0, 10.0);
        c.add(1, 1, 20.0);
        c.add(2, 2, 30.0);
        c.add(0, 1, 5.0);
        let a = c.to_csr();
        let perm = vec![2usize, 0, 1]; // new 0 = old 2, etc.
        let b = permute_symmetric(&a, &perm);
        assert_eq!(b.get(0, 0), 30.0);
        assert_eq!(b.get(1, 1), 10.0);
        assert_eq!(b.get(2, 2), 20.0);
        assert_eq!(b.get(1, 2), 5.0); // old (0,1) -> new (1,2)
    }

    #[test]
    fn spmv_commutes_with_permutation() {
        let a = crate::gen::laplace2d(6, 6);
        let n = a.nrows();
        let perm: Vec<usize> = (0..n).map(|i| (i * 7 + 5) % n).collect();
        assert!(is_permutation(&perm, n));
        let b = permute_symmetric(&a, &perm);
        let x: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        // y = A x, then permute y; vs permute x, times B.
        let mut y = vec![0.0; n];
        crate::spmv::spmv(&a, &x, &mut y);
        let yp = permute_vec(&y, &perm);
        let xp = permute_vec(&x, &perm);
        let mut y2 = vec![0.0; n];
        crate::spmv::spmv(&b, &xp, &mut y2);
        for i in 0..n {
            assert!((yp[i] - y2[i]).abs() < 1e-13);
        }
    }

    #[test]
    fn permute_unpermute_roundtrip() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let perm = vec![3usize, 1, 0, 2];
        let p = permute_vec(&x, &perm);
        assert_eq!(p, vec![4.0, 2.0, 1.0, 3.0]);
        assert_eq!(unpermute_vec(&p, &perm), x);
    }

    #[test]
    fn is_permutation_detects_bad() {
        assert!(is_permutation(&[1, 0, 2], 3));
        assert!(!is_permutation(&[0, 0, 2], 3));
        assert!(!is_permutation(&[0, 1], 3));
        assert!(!is_permutation(&[0, 1, 3], 3));
    }
}
