//! Compressed sparse row format — the workhorse representation.
//!
//! The CPU reference path multiplies straight from CSR (the paper's MKL
//! configuration); the MPK setup walks CSR rows to build boundary sets;
//! submatrix extraction (`select_rows`) produces each device's local and
//! boundary blocks.

use crate::Coo;
use ca_scalar::Scalar;

/// An immutable CSR sparse matrix with `u32` column indices, generic over
/// the value type (default `f64`).
#[derive(Debug, Clone, PartialEq)]
pub struct Csr<T: Scalar = f64> {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<T>,
}

impl Csr {
    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.add(i, i, 1.0);
        }
        coo.to_csr()
    }
}

impl<T: Scalar> Csr<T> {
    /// Assemble from raw CSR arrays. Invariants (monotone `row_ptr`,
    /// in-bounds columns) are checked with debug assertions.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<T>,
    ) -> Self {
        debug_assert_eq!(row_ptr.len(), nrows + 1);
        debug_assert_eq!(*row_ptr.last().unwrap_or(&0), col_idx.len());
        debug_assert_eq!(col_idx.len(), values.len());
        debug_assert!(row_ptr.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(col_idx.iter().all(|&c| (c as usize) < ncols));
        Self { nrows, ncols, row_ptr, col_idx, values }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row pointer array (length `nrows + 1`).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column-index array.
    #[inline]
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// Value array.
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Mutable value array (structure is fixed; scaling/balancing edits
    /// values in place).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// The column indices and values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[T]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Number of nonzeros in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Entry `(i, j)` by binary search over the (sorted) row.
    pub fn get(&self, i: usize, j: usize) -> T {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&(j as u32)) {
            Ok(p) => vals[p],
            Err(_) => T::ZERO,
        }
    }

    /// Maximum row length (the ELLPACK width).
    pub fn max_row_nnz(&self) -> usize {
        (0..self.nrows).map(|i| self.row_nnz(i)).max().unwrap_or(0)
    }

    /// Average nonzeros per row (the paper's `nnz/n` column in Fig. 12).
    pub fn avg_row_nnz(&self) -> f64 {
        if self.nrows == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.nrows as f64
        }
    }

    /// Structural bandwidth: `max_i max_{j in row i} |i - j|`.
    pub fn bandwidth(&self) -> usize {
        let mut bw = 0usize;
        for i in 0..self.nrows {
            for &c in self.row(i).0 {
                bw = bw.max(i.abs_diff(c as usize));
            }
        }
        bw
    }

    /// Extract the submatrix consisting of the given rows (all columns
    /// kept, column indices unchanged) — `A(i, :)` in the paper's MPK
    /// notation. Rows appear in the order given.
    pub fn select_rows(&self, rows: &[usize]) -> Csr<T> {
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        row_ptr.push(0usize);
        let mut nnz = 0usize;
        for &r in rows {
            nnz += self.row_nnz(r);
            row_ptr.push(nnz);
        }
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        for &r in rows {
            let (c, v) = self.row(r);
            col_idx.extend_from_slice(c);
            values.extend_from_slice(v);
        }
        Csr::from_raw(rows.len(), self.ncols, row_ptr, col_idx, values)
    }

    /// Remap column indices through `map` (old global column -> new local
    /// column) producing a matrix with `new_ncols` columns. Entries whose
    /// column maps to `u32::MAX` are dropped. Used to compress a device's
    /// matrix onto its locally-stored vector entries.
    pub fn remap_cols(&self, map: &[u32], new_ncols: usize) -> Csr<T> {
        assert_eq!(map.len(), self.ncols);
        let mut row_ptr = vec![0usize; self.nrows + 1];
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                let nc = map[c as usize];
                if nc != u32::MAX {
                    debug_assert!((nc as usize) < new_ncols);
                    col_idx.push(nc);
                    values.push(v);
                }
            }
            row_ptr[i + 1] = col_idx.len();
        }
        Csr::from_raw(self.nrows, new_ncols, row_ptr, col_idx, values)
    }

    /// Transpose (exact, sorts columns implicitly via counting).
    pub fn transpose(&self) -> Csr<T> {
        let mut cnt = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            cnt[c as usize + 1] += 1;
        }
        for j in 0..self.ncols {
            cnt[j + 1] += cnt[j];
        }
        let row_ptr = cnt.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![T::ZERO; self.nnz()];
        let mut next = cnt;
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                let p = next[c as usize];
                col_idx[p] = i as u32;
                values[p] = v;
                next[c as usize] += 1;
            }
        }
        Csr::from_raw(self.ncols, self.nrows, row_ptr, col_idx, values)
    }

    /// Whether the sparsity pattern is structurally symmetric.
    pub fn is_structurally_symmetric(&self) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        self.row_ptr == t.row_ptr && self.col_idx == t.col_idx
    }

    /// Frobenius norm of the matrix.
    pub fn fro_norm(&self) -> T {
        let mut s = T::ZERO;
        for &v in &self.values {
            s += v * v;
        }
        s.sqrt()
    }

    /// A copy cast element-by-element into another scalar type (`as`
    /// semantics; structure shared verbatim). This is how the
    /// mixed-precision path derives its `f32` operator from the `f64`
    /// source matrix.
    pub fn cast<U: Scalar>(&self) -> Csr<U> {
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values: self.values.iter().map(|&v| U::from_f64(v.to_f64())).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [1 2 0]
        // [0 3 4]
        // [5 0 6]
        let mut c = Coo::new(3, 3);
        c.add(0, 0, 1.0);
        c.add(0, 1, 2.0);
        c.add(1, 1, 3.0);
        c.add(1, 2, 4.0);
        c.add(2, 0, 5.0);
        c.add(2, 2, 6.0);
        c.to_csr()
    }

    #[test]
    fn basic_accessors() {
        let m = sample();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.nnz(), 6);
        assert_eq!(m.row_nnz(1), 2);
        assert_eq!(m.get(2, 0), 5.0);
        assert_eq!(m.get(0, 2), 0.0);
        assert_eq!(m.max_row_nnz(), 2);
        assert!((m.avg_row_nnz() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn bandwidth_computed() {
        let m = sample();
        assert_eq!(m.bandwidth(), 2); // entry (2,0)
        assert_eq!(Csr::identity(4).bandwidth(), 0);
    }

    #[test]
    fn select_rows_extracts() {
        let m = sample();
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.nrows(), 2);
        assert_eq!(s.get(0, 0), 5.0); // old row 2
        assert_eq!(s.get(0, 2), 6.0);
        assert_eq!(s.get(1, 1), 2.0); // old row 0
    }

    #[test]
    fn remap_cols_compresses_and_drops() {
        let m = sample();
        // keep columns 0 and 2, renumber to 0 and 1
        let map = vec![0u32, u32::MAX, 1u32];
        let r = m.remap_cols(&map, 2);
        assert_eq!(r.ncols(), 2);
        assert_eq!(r.get(0, 0), 1.0);
        assert_eq!(r.get(0, 1), 0.0); // the 2.0 at old col 1 was dropped
        assert_eq!(r.get(1, 1), 4.0);
        assert_eq!(r.get(2, 0), 5.0);
        assert_eq!(r.get(2, 1), 6.0);
    }

    #[test]
    fn transpose_round_trip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.get(0, 2), 5.0);
        assert_eq!(t.get(1, 0), 2.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn structural_symmetry() {
        assert!(Csr::identity(3).is_structurally_symmetric());
        assert!(!sample().is_structurally_symmetric());
        let mut c = Coo::new(2, 2);
        c.add(0, 1, 1.0);
        c.add(1, 0, 9.0);
        assert!(c.to_csr().is_structurally_symmetric()); // pattern, not values
    }

    #[test]
    fn fro_norm_matches() {
        let m = Csr::identity(4);
        assert!((m.fro_norm() - 2.0).abs() < 1e-15);
    }
}
