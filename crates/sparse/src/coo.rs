//! Coordinate-format builder for sparse matrices.
//!
//! All generators and the Matrix Market reader assemble entries here;
//! duplicates are summed on conversion to CSR (the FEM-assembly
//! convention).

use crate::{Csr, Result, SparseError};

/// A coordinate-format (triplet) sparse matrix under construction.
#[derive(Debug, Clone, Default)]
pub struct Coo {
    nrows: usize,
    ncols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl Coo {
    /// New empty builder for an `nrows x ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        assert!(nrows < u32::MAX as usize && ncols < u32::MAX as usize);
        Self { nrows, ncols, entries: Vec::new() }
    }

    /// Reserve space for `n` additional entries.
    pub fn reserve(&mut self, n: usize) {
        self.entries.reserve(n);
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of raw (possibly duplicate) entries pushed so far.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Add `value` at `(row, col)`; duplicates accumulate.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        if value != 0.0 {
            self.entries.push((row as u32, col as u32, value));
        }
        Ok(())
    }

    /// Add `value` at `(row, col)`, panicking on out-of-bounds — convenient
    /// inside generators whose indices are correct by construction.
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        self.push(row, col, value).expect("generator produced out-of-bounds entry");
    }

    /// Convert to CSR, summing duplicates and dropping entries that cancel
    /// to exactly zero. Column indices within each row are sorted.
    pub fn to_csr(mut self) -> Csr {
        // Sort by (row, col) then sum runs.
        self.entries.sort_unstable_by_key(|&(r, c, _)| ((r as u64) << 32) | c as u64);
        let mut row_ptr = vec![0usize; self.nrows + 1];
        let mut col_idx: Vec<u32> = Vec::with_capacity(self.entries.len());
        let mut values: Vec<f64> = Vec::with_capacity(self.entries.len());

        let mut i = 0usize;
        while i < self.entries.len() {
            let (r, c, mut v) = self.entries[i];
            let mut j = i + 1;
            while j < self.entries.len() && self.entries[j].0 == r && self.entries[j].1 == c {
                v += self.entries[j].2;
                j += 1;
            }
            if v != 0.0 {
                col_idx.push(c);
                values.push(v);
                row_ptr[r as usize + 1] += 1;
            }
            i = j;
        }
        for r in 0..self.nrows {
            row_ptr[r + 1] += row_ptr[r];
        }
        Csr::from_raw(self.nrows, self.ncols, row_ptr, col_idx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple() {
        let mut c = Coo::new(2, 3);
        c.add(0, 0, 1.0);
        c.add(1, 2, 2.0);
        c.add(0, 1, 3.0);
        let m = c.to_csr();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.get(1, 2), 2.0);
        assert_eq!(m.get(1, 0), 0.0);
    }

    #[test]
    fn duplicates_sum() {
        let mut c = Coo::new(1, 1);
        c.add(0, 0, 1.5);
        c.add(0, 0, 2.5);
        let m = c.to_csr();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), 4.0);
    }

    #[test]
    fn cancelling_duplicates_dropped() {
        let mut c = Coo::new(1, 2);
        c.add(0, 0, 1.0);
        c.add(0, 0, -1.0);
        c.add(0, 1, 2.0);
        let m = c.to_csr();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn zero_pushes_ignored() {
        let mut c = Coo::new(1, 1);
        c.add(0, 0, 0.0);
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut c = Coo::new(2, 2);
        assert!(c.push(2, 0, 1.0).is_err());
        assert!(c.push(0, 5, 1.0).is_err());
    }

    #[test]
    fn columns_sorted_within_rows() {
        let mut c = Coo::new(1, 5);
        for col in [4, 0, 2, 3, 1] {
            c.add(0, col, col as f64 + 1.0);
        }
        let m = c.to_csr();
        let (cols, vals) = m.row(0);
        assert_eq!(cols, &[0, 1, 2, 3, 4]);
        assert_eq!(vals, &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }
}
