//! ELLPACK format — the paper's GPU SpMV layout (Fig. 3 caption).
//!
//! ELLPACK stores a fixed number of slots per row (`width` = longest row),
//! padding short rows with zeros, in **column-major** slot order: slot `k`
//! of all rows is contiguous. On a real GPU this makes warp loads coalesced;
//! here it gives the simulator an honest handle on the format's bandwidth
//! cost (padding is read like real data) and gives the CPU a
//! vectorization-friendly inner loop.

use crate::Csr;
use ca_scalar::Scalar;
use rayon::prelude::*;

/// An ELLPACK sparse matrix, generic over the value type (default `f64`).
#[derive(Debug, Clone)]
pub struct Ell<T: Scalar = f64> {
    nrows: usize,
    ncols: usize,
    width: usize,
    /// Column indices, `width * nrows`, slot-major: entry for (row i, slot k)
    /// at `k * nrows + i`. Padding slots repeat the row's own index with a
    /// zero value (a standard trick that keeps gathers in-bounds).
    col_idx: Vec<u32>,
    /// Values in the same layout.
    values: Vec<T>,
    nnz: usize,
}

impl<T: Scalar> Ell<T> {
    /// Convert from CSR. `width` becomes the maximum row length.
    pub fn from_csr(a: &Csr<T>) -> Self {
        let nrows = a.nrows();
        let width = a.max_row_nnz();
        let mut col_idx = vec![0u32; width * nrows];
        let mut values = vec![T::ZERO; width * nrows];
        for i in 0..nrows {
            let (cols, vals) = a.row(i);
            for k in 0..width {
                let p = k * nrows + i;
                if k < cols.len() {
                    col_idx[p] = cols[k];
                    values[p] = vals[k];
                } else {
                    // in-bounds padding: self column (or 0 for empty matrices)
                    col_idx[p] = if a.ncols() > 0 { (i % a.ncols()) as u32 } else { 0 };
                    values[p] = T::ZERO;
                }
            }
        }
        Self { nrows, ncols: a.ncols(), width, col_idx, values, nnz: a.nnz() }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Slots per row.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// True stored nonzeros (excludes padding).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Total slots including padding — what the format actually streams.
    #[inline]
    pub fn padded_nnz(&self) -> usize {
        self.width * self.nrows
    }

    /// Bytes the format occupies (used by the simulator's memory
    /// accounting: one `T::BYTES` value + 4-byte index per slot).
    pub fn bytes(&self) -> usize {
        self.padded_nnz() * (T::BYTES + 4)
    }

    /// `y := A x` streaming slot-by-slot (the coalesced GPU order).
    ///
    /// Large matrices are processed in parallel row chunks (rayon); each
    /// output row is owned by exactly one task and the slot order within a
    /// chunk is unchanged, so results are bitwise identical to the
    /// sequential path.
    pub fn spmv(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        const PAR_THRESHOLD: usize = 200_000; // padded slots
        if self.padded_nnz() < PAR_THRESHOLD {
            self.spmv_rows(x, y, 0);
        } else {
            let chunk = self.nrows.div_ceil(rayon::current_num_threads().max(1)).max(1024);
            y.par_chunks_mut(chunk).enumerate().for_each(|(ci, yc)| {
                self.spmv_rows(x, yc, ci * chunk);
            });
        }
    }

    /// Slot-major SpMV over the row range `[r0, r0 + y.len())`.
    fn spmv_rows(&self, x: &[T], y: &mut [T], r0: usize) {
        y.iter_mut().for_each(|v| *v = T::ZERO);
        let rows = y.len();
        for k in 0..self.width {
            let base = k * self.nrows + r0;
            let cs = &self.col_idx[base..base + rows];
            let vs = &self.values[base..base + rows];
            for i in 0..rows {
                y[i] += vs[i] * x[cs[i] as usize];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn sample() -> Csr {
        let mut c = Coo::new(3, 3);
        c.add(0, 0, 1.0);
        c.add(0, 1, 2.0);
        c.add(1, 1, 3.0);
        c.add(2, 0, 5.0);
        c.add(2, 1, -1.0);
        c.add(2, 2, 6.0);
        c.to_csr()
    }

    #[test]
    fn conversion_preserves_shape() {
        let e = Ell::from_csr(&sample());
        assert_eq!(e.nrows(), 3);
        assert_eq!(e.width(), 3);
        assert_eq!(e.nnz(), 6);
        assert_eq!(e.padded_nnz(), 9);
    }

    #[test]
    fn spmv_matches_csr() {
        let a = sample();
        let e = Ell::from_csr(&a);
        let x = [1.0, -2.0, 0.5];
        let mut y_ell = [0.0; 3];
        e.spmv(&x, &mut y_ell);
        let mut y_csr = [0.0; 3];
        crate::spmv::spmv(&a, &x, &mut y_csr);
        for i in 0..3 {
            assert!((y_ell[i] - y_csr[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn empty_rows_padded_safely() {
        let mut c = Coo::new(3, 3);
        c.add(0, 2, 7.0); // rows 1 and 2 empty
        let e = Ell::from_csr(&c.to_csr());
        let x = [1.0, 1.0, 1.0];
        let mut y = [9.0; 3];
        e.spmv(&x, &mut y);
        assert_eq!(y, [7.0, 0.0, 0.0]);
    }

    #[test]
    fn parallel_path_matches_sequential_bitwise() {
        // large enough to cross the parallel threshold
        let a = crate::gen::laplace2d(300, 300);
        let e = Ell::from_csr(&a);
        assert!(e.padded_nnz() >= 200_000);
        let x: Vec<f64> = (0..a.nrows()).map(|i| (i as f64 * 0.001).sin()).collect();
        let mut y_par = vec![0.0; a.nrows()];
        e.spmv(&x, &mut y_par);
        // sequential reference via the row-range helper
        let mut y_seq = vec![0.0; a.nrows()];
        e.spmv_rows(&x, &mut y_seq, 0);
        assert_eq!(y_par, y_seq, "parallel SpMV must be bitwise identical");
    }

    #[test]
    fn bytes_counts_padding() {
        let e = Ell::from_csr(&sample());
        assert_eq!(e.bytes(), 9 * 12);
    }
}
