//! Hypergraph partitioning — the paper's §VII outlook ("We also plan to
//! study other partitioning algorithms (e.g., hypergraph partitioning)").
//!
//! The column-net hypergraph model (Catalyurek & Aykanat) represents each
//! matrix column as a *net* connecting the rows with a nonzero in it. The
//! (lambda - 1) metric — each net contributes `(parts it touches) - 1` —
//! counts the SpMV scatter volume *exactly*, unlike the graph edge-cut
//! which only approximates it on non-symmetric patterns.
//!
//! The partitioner is a flat (non-multilevel) recursive bisection with
//! Fiduccia–Mattheysen-style single-vertex moves on the (lambda - 1)
//! gain, deterministic and dependency-free. No METIS/PaToH-class quality
//! is claimed; the point is the *model* comparison against the graph
//! partitioner, which the `ext_partitioners` study runs.

use crate::partition::Partition;
use crate::Csr;

/// Column-net hypergraph of a sparse matrix: vertex `i` = row `i`; net
/// `j` = the set of rows with a nonzero in column `j`.
#[derive(Debug, Clone)]
pub struct Hypergraph {
    /// Net -> member vertices (CSR of the transpose pattern).
    net_ptr: Vec<usize>,
    net_mem: Vec<u32>,
    /// Vertex -> nets it belongs to (the row pattern itself).
    vtx_ptr: Vec<usize>,
    vtx_nets: Vec<u32>,
    nvtx: usize,
}

impl Hypergraph {
    /// Build the column-net model of `a`.
    pub fn column_net(a: &Csr) -> Self {
        let at = a.transpose();
        Self {
            net_ptr: at.row_ptr().to_vec(),
            net_mem: at.col_idx().to_vec(),
            vtx_ptr: a.row_ptr().to_vec(),
            vtx_nets: a.col_idx().to_vec(),
            nvtx: a.nrows(),
        }
    }

    /// Number of vertices (rows).
    pub fn nvtx(&self) -> usize {
        self.nvtx
    }

    /// Number of nets (columns).
    pub fn nnets(&self) -> usize {
        self.net_ptr.len() - 1
    }

    /// Members of net `j`.
    pub fn net(&self, j: usize) -> &[u32] {
        &self.net_mem[self.net_ptr[j]..self.net_ptr[j + 1]]
    }

    /// Nets of vertex `v`.
    pub fn nets_of(&self, v: usize) -> &[u32] {
        &self.vtx_nets[self.vtx_ptr[v]..self.vtx_ptr[v + 1]]
    }

    /// The (lambda - 1) connectivity metric of a partition: the exact SpMV
    /// scatter volume in vector elements.
    pub fn lambda_minus_one(&self, part: &[u32], nparts: usize) -> usize {
        let mut total = 0usize;
        let mut seen = vec![u32::MAX; nparts];
        for j in 0..self.nnets() {
            let mut lambda = 0usize;
            for &v in self.net(j) {
                let p = part[v as usize] as usize;
                if seen[p] != j as u32 {
                    seen[p] = j as u32;
                    lambda += 1;
                }
            }
            total += lambda.saturating_sub(1);
        }
        total
    }
}

/// K-way hypergraph partition by recursive bisection with FM refinement on
/// the (lambda - 1) gain. Deterministic.
pub fn hypergraph_partition(a: &Csr, nparts: usize, fm_passes: usize) -> Partition {
    assert!(nparts >= 1);
    let hg = Hypergraph::column_net(a);
    let n = hg.nvtx();
    let mut part = vec![0u32; n];
    if nparts > 1 {
        let all: Vec<u32> = (0..n as u32).collect();
        bisect(&hg, &all, 0, nparts, fm_passes, &mut part);
    }
    Partition { part, nparts }
}

fn bisect(
    hg: &Hypergraph,
    verts: &[u32],
    base: u32,
    nparts: usize,
    fm_passes: usize,
    part: &mut [u32],
) {
    if nparts == 1 || verts.len() <= 1 {
        for &v in verts {
            part[v as usize] = base;
        }
        return;
    }
    let left_parts = nparts / 2;
    let right_parts = nparts - left_parts;
    let target_left = verts.len() * left_parts / nparts;

    // initial split: breadth-first over shared nets from the first vertex
    // (keeps net members together), remainder appended in index order
    let inset: std::collections::HashSet<u32> = verts.iter().copied().collect();
    let mut order: Vec<u32> = Vec::with_capacity(verts.len());
    let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(verts[0]);
    seen.insert(verts[0]);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &net in hg.nets_of(u as usize) {
            for &w in hg.net(net as usize) {
                if inset.contains(&w) && seen.insert(w) {
                    queue.push_back(w);
                }
            }
        }
        if queue.is_empty() && order.len() < verts.len() {
            if let Some(&v) = verts.iter().find(|&&v| !seen.contains(&v)) {
                seen.insert(v);
                queue.push_back(v);
            }
        }
    }
    // side[v]: 0 = left, 1 = right
    let mut side: std::collections::HashMap<u32, u8> = std::collections::HashMap::new();
    for (i, &v) in order.iter().enumerate() {
        side.insert(v, u8::from(i >= target_left.max(1)));
    }

    // FM refinement on (lambda - 1) between the two sides, restricted to
    // nets fully inside this vertex set's closure
    let mut sizes = [0usize; 2];
    for &v in verts {
        sizes[side[&v] as usize] += 1;
    }
    let max_imb = (verts.len() as f64 * 0.55).ceil() as usize;
    for _ in 0..fm_passes {
        let mut moved = 0usize;
        for &v in &order {
            let sv = side[&v] as usize;
            if sizes[sv] <= 1 || sizes[1 - sv] + 1 > max_imb {
                continue;
            }
            // gain = nets that become internal minus nets that become cut
            let mut gain = 0i64;
            for &net in hg.nets_of(v as usize) {
                let (mut same, mut other) = (0usize, 0usize);
                for &w in hg.net(net as usize) {
                    if w == v || !inset.contains(&w) {
                        continue;
                    }
                    if side[&w] as usize == sv {
                        same += 1;
                    } else {
                        other += 1;
                    }
                }
                if same == 0 && other > 0 {
                    gain += 1; // net un-cuts when v leaves
                } else if other == 0 && same > 0 {
                    gain -= 1; // net becomes cut
                }
            }
            if gain > 0 {
                side.insert(v, 1 - sv as u8);
                sizes[sv] -= 1;
                sizes[1 - sv] += 1;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }

    let left: Vec<u32> = verts.iter().copied().filter(|v| side[v] == 0).collect();
    let right: Vec<u32> = verts.iter().copied().filter(|v| side[v] == 1).collect();
    if left.is_empty() || right.is_empty() {
        // degenerate split: fall back to index halves
        let (l, r) = verts.split_at(target_left.max(1).min(verts.len() - 1));
        bisect(hg, l, base, left_parts, fm_passes, part);
        bisect(hg, r, base + left_parts as u32, right_parts, fm_passes, part);
        return;
    }
    bisect(hg, &left, base, left_parts, fm_passes, part);
    bisect(hg, &right, base + left_parts as u32, right_parts, fm_passes, part);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn column_net_model_shapes() {
        let a = gen::laplace2d(4, 4);
        let hg = Hypergraph::column_net(&a);
        assert_eq!(hg.nvtx(), 16);
        assert_eq!(hg.nnets(), 16);
        // net j contains exactly the rows with a nonzero in column j;
        // for the symmetric Laplacian that is row j and its neighbors
        assert!(hg.net(5).contains(&5));
        assert_eq!(hg.net(0).len(), a.transpose().row_nnz(0));
    }

    #[test]
    fn lambda_metric_counts_scatter_volume() {
        // 4-vertex path; nets = columns. Split {0,1} | {2,3}: columns 1 and
        // 2 straddle the cut (column 1 touches rows 0,1,2; column 2 touches
        // rows 1,2,3), every other column stays internal.
        let a = gen::laplace2d(1, 4); // path of 4
        let hg = Hypergraph::column_net(&a);
        let part = vec![0u32, 0, 1, 1];
        assert_eq!(hg.lambda_minus_one(&part, 2), 2);
        // one part: zero volume
        assert_eq!(hg.lambda_minus_one(&[0, 0, 0, 0], 2), 0);
    }

    #[test]
    fn partition_covers_and_balances() {
        let a = gen::laplace2d(12, 12);
        for k in [2usize, 3, 4] {
            let p = hypergraph_partition(&a, k, 3);
            assert_eq!(p.part.len(), 144);
            assert!(p.part.iter().all(|&q| (q as usize) < k));
            assert!(p.imbalance() < 1.6, "k={k}: imbalance {}", p.imbalance());
        }
    }

    #[test]
    fn hypergraph_beats_naive_split_on_lambda() {
        let a = gen::circuit(2000, 5);
        let hg = Hypergraph::column_net(&a);
        let p = hypergraph_partition(&a, 2, 3);
        let naive: Vec<u32> = (0..2000).map(|v| u32::from(v >= 1000)).collect();
        let l_hg = hg.lambda_minus_one(&p.part, 2);
        let l_naive = hg.lambda_minus_one(&naive, 2);
        assert!(
            l_hg < l_naive,
            "hypergraph lambda-1 {l_hg} should beat naive {l_naive} (scrambled labels)"
        );
    }

    #[test]
    fn deterministic() {
        let a = gen::circuit(800, 9);
        let p1 = hypergraph_partition(&a, 3, 2);
        let p2 = hypergraph_partition(&a, 3, 2);
        assert_eq!(p1.part, p2.part);
    }
}
