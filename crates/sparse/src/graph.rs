//! Graph view of a sparse matrix's symmetrized pattern.
//!
//! The MPK's boundary-set recursion, RCM, and the k-way partitioner all
//! operate on the adjacency graph of `A + A^T` (structural symmetrization,
//! diagonal dropped).

use crate::Csr;

/// Adjacency structure of the symmetrized sparsity pattern.
#[derive(Debug, Clone)]
pub struct Graph {
    ptr: Vec<usize>,
    adj: Vec<u32>,
}

impl Graph {
    /// Build the adjacency graph of `A + A^T` (pattern only, no self loops).
    pub fn from_csr(a: &Csr) -> Self {
        assert_eq!(a.nrows(), a.ncols(), "adjacency graph needs a square matrix");
        let n = a.nrows();
        let at = a.transpose();
        let mut ptr = vec![0usize; n + 1];
        // Count merged degrees (two sorted lists, union minus diagonal).
        for i in 0..n {
            ptr[i + 1] = merged_count(a.row(i).0, at.row(i).0, i as u32);
        }
        for i in 0..n {
            ptr[i + 1] += ptr[i];
        }
        let mut adj = vec![0u32; ptr[n]];
        for i in 0..n {
            let dst = &mut adj[ptr[i]..ptr[i + 1]];
            merge_into(a.row(i).0, at.row(i).0, i as u32, dst);
        }
        Self { ptr, adj }
    }

    /// Number of vertices.
    #[inline]
    pub fn nvertices(&self) -> usize {
        self.ptr.len() - 1
    }

    /// Neighbors of vertex `v` (sorted, no self loop).
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adj[self.ptr[v]..self.ptr[v + 1]]
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.ptr[v + 1] - self.ptr[v]
    }

    /// BFS level structure rooted at `root`, confined to unvisited
    /// vertices. Returns `(levels, order)` where `levels[v]` is the BFS
    /// depth (usize::MAX for unreached) and `order` lists vertices in BFS
    /// order.
    pub fn bfs_levels(&self, root: usize) -> (Vec<usize>, Vec<u32>) {
        let n = self.nvertices();
        let mut levels = vec![usize::MAX; n];
        let mut order = Vec::with_capacity(n);
        let mut frontier = vec![root as u32];
        levels[root] = 0;
        order.push(root as u32);
        let mut depth = 0usize;
        while !frontier.is_empty() {
            depth += 1;
            let mut next = Vec::new();
            for &u in &frontier {
                for &w in self.neighbors(u as usize) {
                    if levels[w as usize] == usize::MAX {
                        levels[w as usize] = depth;
                        order.push(w);
                        next.push(w);
                    }
                }
            }
            frontier = next;
        }
        (levels, order)
    }

    /// A pseudo-peripheral vertex found by repeated BFS from the farthest,
    /// smallest-degree vertex of the last level (George–Liu heuristic).
    /// `start` seeds the search; the returned vertex is a good RCM root.
    pub fn pseudo_peripheral(&self, start: usize) -> usize {
        let mut root = start;
        let (mut levels, mut order) = self.bfs_levels(root);
        let mut ecc = *order.last().map(|&v| &levels[v as usize]).unwrap_or(&0);
        loop {
            // candidates: deepest level, pick min degree
            let deepest = ecc;
            let mut best: Option<usize> = None;
            for &v in order.iter().rev() {
                if levels[v as usize] != deepest {
                    break;
                }
                match best {
                    None => best = Some(v as usize),
                    Some(b) => {
                        if self.degree(v as usize) < self.degree(b) {
                            best = Some(v as usize);
                        }
                    }
                }
            }
            let cand = best.unwrap_or(root);
            let (l2, o2) = self.bfs_levels(cand);
            let ecc2 = o2.last().map(|&v| l2[v as usize]).unwrap_or(0);
            if ecc2 > ecc {
                root = cand;
                levels = l2;
                order = o2;
                ecc = ecc2;
            } else {
                return cand;
            }
        }
    }

    /// Connected components: returns `comp[v]` labels in 0..ncomponents.
    pub fn connected_components(&self) -> (usize, Vec<u32>) {
        let n = self.nvertices();
        let mut comp = vec![u32::MAX; n];
        let mut ncomp = 0u32;
        for s in 0..n {
            if comp[s] != u32::MAX {
                continue;
            }
            let mut stack = vec![s as u32];
            comp[s] = ncomp;
            while let Some(u) = stack.pop() {
                for &w in self.neighbors(u as usize) {
                    if comp[w as usize] == u32::MAX {
                        comp[w as usize] = ncomp;
                        stack.push(w);
                    }
                }
            }
            ncomp += 1;
        }
        (ncomp as usize, comp)
    }
}

fn merged_count(a: &[u32], b: &[u32], skip: u32) -> usize {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() || j < b.len() {
        let x = if i < a.len() { a[i] } else { u32::MAX };
        let y = if j < b.len() { b[j] } else { u32::MAX };
        let m = x.min(y);
        if x == m {
            i += 1;
        }
        if y == m {
            j += 1;
        }
        if m != skip {
            n += 1;
        }
    }
    n
}

fn merge_into(a: &[u32], b: &[u32], skip: u32, dst: &mut [u32]) {
    let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
    while i < a.len() || j < b.len() {
        let x = if i < a.len() { a[i] } else { u32::MAX };
        let y = if j < b.len() { b[j] } else { u32::MAX };
        let m = x.min(y);
        if x == m {
            i += 1;
        }
        if y == m {
            j += 1;
        }
        if m != skip {
            dst[k] = m;
            k += 1;
        }
    }
    debug_assert_eq!(k, dst.len());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    /// Path graph 0-1-2-3 as an asymmetric matrix (only upper edges stored),
    /// exercising the symmetrization.
    fn path4() -> Graph {
        let mut c = Coo::new(4, 4);
        for i in 0..3 {
            c.add(i, i + 1, 1.0);
        }
        for i in 0..4 {
            c.add(i, i, 2.0); // diagonal must be dropped
        }
        Graph::from_csr(&c.to_csr())
    }

    #[test]
    fn symmetrized_adjacency() {
        let g = path4();
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(3), &[2]);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn bfs_levels_on_path() {
        let g = path4();
        let (levels, order) = g.bfs_levels(0);
        assert_eq!(levels, vec![0, 1, 2, 3]);
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn pseudo_peripheral_finds_endpoint() {
        let g = path4();
        let p = g.pseudo_peripheral(1);
        assert!(p == 0 || p == 3, "got {p}");
    }

    #[test]
    fn components_counted() {
        // two disconnected edges: 0-1, 2-3
        let mut c = Coo::new(4, 4);
        c.add(0, 1, 1.0);
        c.add(1, 0, 1.0);
        c.add(2, 3, 1.0);
        c.add(3, 2, 1.0);
        let g = Graph::from_csr(&c.to_csr());
        let (n, comp) = g.connected_components();
        assert_eq!(n, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
    }

    #[test]
    fn grid_graph_levels_match_manhattan() {
        let a = crate::gen::laplace2d(5, 5);
        let g = Graph::from_csr(&a);
        let (levels, _) = g.bfs_levels(0);
        // vertex (i,j) at index i*5+j has BFS depth i+j from corner 0
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(levels[i * 5 + j], i + j);
            }
        }
    }
}
