//! Stream/event execution model: per-device command queues, events, and
//! the start-time rule.
//!
//! The simulator's execution model mirrors CUDA streams:
//!
//! * every device owns one in-order **command queue** (its stream):
//!   kernels and copies issued to a device execute in issue order, each
//!   starting at `max(queue_predecessor_finish, waited_events)` — the
//!   start-time rule. The queue tail is the device clock; a [`Cmd`] trace
//!   of the queue can be recorded for replay verification;
//! * an [`Event`] is a handle to a recorded completion timestamp; any
//!   queue (or the host) can wait on it — the only cross-queue
//!   synchronization primitive;
//! * each device's PCIe link is a **copy engine** ([`CopyEngine`]) with
//!   its own timeline: copies occupy the link, overlap with the device's
//!   compute queue, and serialize against other copies on the same link;
//! * end-to-end simulated time is therefore computed from the dependency
//!   graph, not from global barriers.
//!   [`MultiGpu::sync`](crate::MultiGpu::sync) survives as a scheduling
//!   *policy*: under [`Schedule::Barrier`] (the default, the pre-stream
//!   phase model) it flattens every clock for clean per-phase attribution;
//!   under [`Schedule::EventDriven`] it is a no-op and only real
//!   dependencies order the timeline.
//!
//! The arithmetic side is unaffected by the schedule: commands execute
//! their (real, f64) computation when issued, in program order, so
//! numerical results are bit-identical under either policy — only the
//! clocks differ. That invariant is what lets the overlap study
//! (`ext_overlap`) attribute every saved microsecond to scheduling alone.

/// Scheduling policy of a [`MultiGpu`](crate::MultiGpu).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// Phase-barrier model (default): `sync()` flattens every clock to the
    /// global max at phase boundaries — the fully synchronous schedule,
    /// and the cleanest per-phase time attribution.
    #[default]
    Barrier,
    /// Event-driven model: `sync()` is a no-op; start times follow only
    /// from queue order, waited events, and transfer dependencies, so
    /// compute–transfer overlap actually overlaps.
    EventDriven,
}

/// Handle to a recorded completion timestamp in the executor's
/// [`EventTable`]. Handles do not survive
/// [`MultiGpu::reset_time`](crate::MultiGpu::reset_time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event(pub(crate) u32);

impl Event {
    /// Index into the owning [`EventTable`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One command of a device stream, as recorded in the optional per-device
/// trace. Timestamps are resolved at issue time by the start-time rule,
/// so a trace doubles as the scheduled timeline of the queue — two runs
/// of the same program (same seeds, same `FaultPlan`) produce equal
/// traces, which the determinism suite asserts.
#[derive(Debug, Clone, PartialEq)]
pub enum Cmd {
    /// A compute kernel occupying the device queue for `dur` seconds.
    Kernel {
        /// Kernel name (BLAS-style mnemonic, e.g. `spmv`, `syrk`, `trsm`).
        name: &'static str,
        /// Queue-tail timestamp the kernel started at.
        start: f64,
        /// Kernel duration (seconds) as charged, including any injected
        /// fail-slow perturbation (slowdown multiplier, queue stall).
        dur: f64,
        /// Fault-free modeled duration (seconds). Equal to `dur` on a
        /// healthy device; the `dur / modeled` ratio is the observed
        /// slowdown that trace-driven calibration fits parameters from.
        modeled: f64,
    },
    /// A device→host copy on this device's link.
    CopyToHost {
        /// Payload size.
        bytes: usize,
        /// Link occupancy start (start-time rule over the link timeline).
        start: f64,
        /// Arrival time on the host side.
        finish: f64,
    },
    /// A host→device copy on this device's link.
    CopyToDevice {
        /// Payload size.
        bytes: usize,
        /// Link occupancy start.
        start: f64,
        /// Arrival time on the device side.
        finish: f64,
    },
    /// An event recorded at `at` (a completion timestamp made waitable).
    EventRecord {
        /// The recorded event handle.
        event: Event,
        /// Timestamp the event carries.
        at: f64,
    },
    /// The queue waited for an event; `until` is the queue tail afterward.
    WaitEvent {
        /// The event waited on.
        event: Event,
        /// Queue tail after the wait (`max(tail, event time)`).
        until: f64,
    },
}

/// Table of recorded event timestamps, owned by the executor.
#[derive(Debug, Default)]
pub struct EventTable {
    times: Vec<f64>,
}

impl EventTable {
    /// Record a completion timestamp, returning its handle.
    pub fn record(&mut self, t: f64) -> Event {
        assert!(self.times.len() < u32::MAX as usize, "event table full");
        self.times.push(t);
        Event(self.times.len() as u32 - 1)
    }

    /// The completion timestamp an event carries.
    pub fn time(&self, e: Event) -> f64 {
        self.times[e.0 as usize]
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Forget all events (handles become invalid).
    pub fn clear(&mut self) {
        self.times.clear();
    }
}

/// One PCIe link's copy-engine timeline. Copies on the same link
/// serialize; copies on different links (different devices) overlap — the
/// Keeneland per-GPU-link topology the paper's transfer model assumes.
#[derive(Debug, Clone, Copy, Default)]
pub struct CopyEngine {
    busy_until: f64,
}

impl CopyEngine {
    /// Occupy the link for `dur` seconds starting no earlier than
    /// `earliest` (the start-time rule applied to the link timeline).
    /// Returns `(start, finish)`.
    pub fn occupy(&mut self, earliest: f64, dur: f64) -> (f64, f64) {
        debug_assert!(dur >= 0.0);
        let start = earliest.max(self.busy_until);
        let finish = start + dur;
        self.busy_until = finish;
        (start, finish)
    }

    /// When the link becomes idle.
    pub fn busy_until(&self) -> f64 {
        self.busy_until
    }

    /// Clear the timeline (fresh timing run).
    pub fn reset(&mut self) {
        self.busy_until = 0.0;
    }
}

/// Optional per-device command trace: when enabled, every command issued
/// to the device's stream is recorded with its resolved timestamps.
#[derive(Debug, Default)]
pub struct StreamTrace {
    enabled: bool,
    cmds: Vec<Cmd>,
}

impl StreamTrace {
    /// Start recording commands.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub(crate) fn push(&mut self, cmd: Cmd) {
        self.cmds.push(cmd);
    }

    /// Commands recorded since enablement.
    pub fn cmds(&self) -> &[Cmd] {
        &self.cmds
    }

    /// Drain the recorded commands.
    pub fn take(&mut self) -> Vec<Cmd> {
        std::mem::take(&mut self.cmds)
    }

    /// Drop buffered commands without disabling recording (used when the
    /// executor's clocks are reset: stale pre-reset timestamps would break
    /// the monotone-timeline invariant of the trace).
    pub fn clear(&mut self) {
        self.cmds.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_table_roundtrip() {
        let mut t = EventTable::default();
        assert!(t.is_empty());
        let a = t.record(1.5);
        let b = t.record(0.5);
        assert_ne!(a, b);
        assert_eq!(t.time(a), 1.5);
        assert_eq!(t.time(b), 0.5);
        assert_eq!(t.len(), 2);
        assert_eq!(a.index(), 0);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn copy_engine_applies_start_time_rule() {
        let mut link = CopyEngine::default();
        // idle link: starts at the requested time
        let (s1, f1) = link.occupy(2.0, 3.0);
        assert_eq!((s1, f1), (2.0, 5.0));
        // busy link: a second copy serializes behind the first
        let (s2, f2) = link.occupy(1.0, 1.0);
        assert_eq!((s2, f2), (5.0, 6.0));
        // a later request after the link drained starts on request
        let (s3, _) = link.occupy(10.0, 0.5);
        assert_eq!(s3, 10.0);
        link.reset();
        assert_eq!(link.busy_until(), 0.0);
    }

    #[test]
    fn trace_records_only_when_enabled() {
        let mut tr = StreamTrace::default();
        tr.push(Cmd::Kernel { name: "spmv", start: 0.0, dur: 1.0, modeled: 1.0 });
        // pushes land regardless; callers gate on is_enabled()
        assert_eq!(tr.cmds().len(), 1);
        assert!(!tr.is_enabled());
        tr.enable();
        assert!(tr.is_enabled());
        let drained = tr.take();
        assert_eq!(drained, vec![Cmd::Kernel { name: "spmv", start: 0.0, dur: 1.0, modeled: 1.0 }]);
        assert!(tr.cmds().is_empty());
    }

    #[test]
    fn schedule_defaults_to_barrier() {
        assert_eq!(Schedule::default(), Schedule::Barrier);
    }
}
