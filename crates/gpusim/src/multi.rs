//! The multi-GPU executor: parallel device phases, PCIe transfers with
//! overlap across per-GPU links, host compute, and communication counters.
//!
//! Timing semantics mirror the paper's execution model:
//!
//! * device kernels launched in a phase run concurrently across GPUs —
//!   [`MultiGpu::run_map`] executes them on real host threads (rayon) and
//!   advances each device's private clock independently;
//! * device→host transfers are asynchronous per-GPU (each Keeneland GPU
//!   has its own PCIe link): the host becomes ready at
//!   `max_d(device_finish_d + transfer_d)` plus a per-message host
//!   overhead — so aggregating messages still pays off, exactly the
//!   latency effect CA methods exploit;
//! * host→device transfers make each device wait for `host_ready +
//!   transfer_d`;
//! * nothing ever waits unless a transfer creates the dependency, so MPK's
//!   communication-free flops genuinely overlap in the model.

use crate::device::Device;
use crate::model::{KernelConfig, PerfModel};
use rayon::prelude::*;
use std::sync::Arc;

/// Counters for the traffic study (Fig. 7 and the "# GPU-CPU comm." column
/// of Fig. 10).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommCounters {
    /// Device→host messages.
    pub msgs_to_host: u64,
    /// Host→device messages.
    pub msgs_to_dev: u64,
    /// Device→host bytes.
    pub bytes_to_host: u64,
    /// Host→device bytes.
    pub bytes_to_dev: u64,
}

impl CommCounters {
    /// Total messages both directions.
    pub fn total_msgs(&self) -> u64 {
        self.msgs_to_host + self.msgs_to_dev
    }

    /// Total bytes both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_to_host + self.bytes_to_dev
    }
}

/// A host plus `n` simulated GPUs, optionally spread over several compute
/// nodes (the paper's §VII outlook). Devices on node 0 talk to the root
/// host over PCIe only; devices on other nodes pay an additional network
/// hop per message.
#[derive(Debug)]
pub struct MultiGpu {
    devices: Vec<Device>,
    host_time: f64,
    model: Arc<PerfModel>,
    /// Kernel variants orthogonalization routines should use.
    pub config: KernelConfig,
    counters: CommCounters,
    /// Compute-node assignment per device (all zeros = single node).
    node_of: Vec<usize>,
}

impl MultiGpu {
    /// Create `n_gpus` devices with the given model and kernel config.
    pub fn new(n_gpus: usize, model: PerfModel, config: KernelConfig) -> Self {
        assert!(n_gpus >= 1);
        let model = Arc::new(model);
        let devices = (0..n_gpus).map(|i| Device::new(i, Arc::clone(&model))).collect();
        Self {
            devices,
            host_time: 0.0,
            model,
            config,
            counters: CommCounters::default(),
            node_of: vec![0; n_gpus],
        }
    }

    /// Create devices spread over compute nodes: `node_of[d]` is device
    /// d's node; devices off node 0 pay a network hop per host message.
    pub fn with_topology(node_of: Vec<usize>, model: PerfModel, config: KernelConfig) -> Self {
        let mut mg = Self::new(node_of.len(), model, config);
        mg.node_of = node_of;
        mg
    }

    /// Node assignment of a device.
    pub fn node_of(&self, d: usize) -> usize {
        self.node_of[d]
    }

    fn link_time(&self, d: usize, bytes: usize) -> f64 {
        if self.node_of[d] == 0 {
            self.model.pcie_time(bytes)
        } else {
            self.model.remote_link_time(bytes)
        }
    }

    /// Default model + default (optimized-kernel) config.
    pub fn with_defaults(n_gpus: usize) -> Self {
        Self::new(n_gpus, PerfModel::default(), KernelConfig::default())
    }

    /// Number of GPUs.
    pub fn n_gpus(&self) -> usize {
        self.devices.len()
    }

    /// The machine model.
    pub fn model(&self) -> &PerfModel {
        &self.model
    }

    /// Borrow a device (host-side inspection).
    pub fn device(&self, d: usize) -> &Device {
        &self.devices[d]
    }

    /// Mutably borrow a device (setup-time loading).
    pub fn device_mut(&mut self, d: usize) -> &mut Device {
        &mut self.devices[d]
    }

    // ---------- execution ----------

    /// Run `f` on every device concurrently (real threads), collecting the
    /// per-device results. Device clocks advance independently — no
    /// implicit barrier.
    pub fn run_map<R, F>(&mut self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &mut Device) -> R + Sync,
    {
        self.devices.par_iter_mut().enumerate().map(|(i, d)| f(i, d)).collect()
    }

    /// Run `f` on every device concurrently, discarding results.
    pub fn run<F>(&mut self, f: F)
    where
        F: Fn(usize, &mut Device) + Sync,
    {
        self.devices.par_iter_mut().enumerate().for_each(|(i, d)| f(i, d));
    }

    // ---------- simulated time ----------

    /// Current end-to-end simulated time (max over host and devices).
    pub fn time(&self) -> f64 {
        self.devices.iter().map(|d| d.clock()).fold(self.host_time, f64::max)
    }

    /// Host clock only.
    pub fn host_time(&self) -> f64 {
        self.host_time
    }

    /// Barrier: align every clock to the current max (used at phase
    /// boundaries so per-phase timings attribute cleanly).
    pub fn sync(&mut self) {
        let t = self.time();
        self.host_time = t;
        for d in &mut self.devices {
            d.set_clock(t);
        }
    }

    /// Charge host compute (small dense factorizations, reductions).
    pub fn host_compute(&mut self, flops: f64, bytes: f64) {
        self.host_time += self.model.host_time(flops, bytes);
    }

    /// Advance the host clock by an explicit amount (CPU-side reference
    /// kernels whose cost is computed by the caller).
    pub fn advance_host(&mut self, dt: f64) {
        debug_assert!(dt >= 0.0);
        self.host_time += dt;
    }

    // ---------- transfers ----------

    /// Device→host transfers, one message per device with `bytes[d]` bytes
    /// (0 = no message from that device). Links overlap; the host is ready
    /// once the slowest arrives, plus per-message host handling.
    pub fn to_host(&mut self, bytes: &[usize]) {
        assert_eq!(bytes.len(), self.devices.len());
        let mut ready = self.host_time;
        let mut msgs = 0u64;
        for (i, (d, &b)) in self.devices.iter().zip(bytes).enumerate() {
            if b == 0 {
                continue;
            }
            ready = ready.max(d.clock() + self.link_time(i, b));
            msgs += 1;
            self.counters.msgs_to_host += 1;
            self.counters.bytes_to_host += b as u64;
        }
        self.host_time = ready + msgs as f64 * self.model.host_msg_s;
    }

    /// Host→device transfers, one message per device. Each receiving
    /// device waits for `host_time + its own transfer`.
    pub fn to_devices(&mut self, bytes: &[usize]) {
        assert_eq!(bytes.len(), self.devices.len());
        let mut msgs = 0u64;
        for i in 0..self.devices.len() {
            let b = bytes[i];
            if b == 0 {
                continue;
            }
            let arrive = self.host_time + self.link_time(i, b);
            let d = &mut self.devices[i];
            d.set_clock(d.clock().max(arrive));
            msgs += 1;
            self.counters.msgs_to_dev += 1;
            self.counters.bytes_to_dev += b as u64;
        }
        self.host_time += msgs as f64 * self.model.host_msg_s;
    }

    /// Broadcast the same payload to all devices.
    pub fn broadcast(&mut self, bytes: usize) {
        let v = vec![bytes; self.devices.len()];
        self.to_devices(&v);
    }

    /// Gather the same-size payload from all devices.
    pub fn gather(&mut self, bytes: usize) {
        let v = vec![bytes; self.devices.len()];
        self.to_host(&v);
    }

    // ---------- counters ----------

    /// Snapshot of the communication counters.
    pub fn counters(&self) -> CommCounters {
        self.counters
    }

    /// Reset the communication counters (per-phase studies).
    pub fn reset_counters(&mut self) {
        self.counters = CommCounters::default();
    }

    /// Reset all clocks and counters (fresh timing run on loaded data).
    pub fn reset_time(&mut self) {
        self.host_time = 0.0;
        for d in &mut self.devices {
            d.set_clock(0.0);
        }
        self.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_map_touches_every_device() {
        let mut mg = MultiGpu::with_defaults(3);
        let ids = mg.run_map(|i, d| {
            assert_eq!(i, d.id());
            i * 10
        });
        assert_eq!(ids, vec![0, 10, 20]);
    }

    #[test]
    fn device_clocks_independent_until_transfer() {
        let mut mg = MultiGpu::with_defaults(2);
        let v0 = mg.device_mut(0).alloc_mat(100_000, 2);
        let v1 = mg.device_mut(1).alloc_mat(1_000, 2);
        mg.run(|i, d| {
            let v = if i == 0 { v0 } else { v1 };
            d.dot_cols(v, 0, 1);
        });
        assert!(mg.device(0).clock() > mg.device(1).clock());
        // a broadcast aligns the laggard to at least host + latency
        mg.broadcast(8);
        assert!(mg.device(1).clock() >= mg.model().pcie_latency_s);
    }

    #[test]
    fn to_host_waits_for_slowest() {
        let mut mg = MultiGpu::with_defaults(2);
        let v0 = mg.device_mut(0).alloc_mat(1_000_000, 2);
        mg.run(|i, d| {
            if i == 0 {
                d.dot_cols(v0, 0, 1);
            }
        });
        let slow = mg.device(0).clock();
        mg.to_host(&[8, 8]);
        assert!(mg.host_time() > slow);
        assert!(mg.host_time() >= slow + mg.model().pcie_latency_s);
    }

    #[test]
    fn zero_byte_messages_skipped() {
        let mut mg = MultiGpu::with_defaults(3);
        mg.to_host(&[0, 0, 0]);
        assert_eq!(mg.counters().msgs_to_host, 0);
        assert_eq!(mg.host_time(), 0.0);
    }

    #[test]
    fn counters_accumulate() {
        let mut mg = MultiGpu::with_defaults(2);
        mg.to_host(&[100, 50]);
        mg.broadcast(8);
        let c = mg.counters();
        assert_eq!(c.msgs_to_host, 2);
        assert_eq!(c.bytes_to_host, 150);
        assert_eq!(c.msgs_to_dev, 2);
        assert_eq!(c.bytes_to_dev, 16);
        assert_eq!(c.total_msgs(), 4);
        mg.reset_counters();
        assert_eq!(mg.counters(), CommCounters::default());
    }

    #[test]
    fn sync_aligns_clocks() {
        let mut mg = MultiGpu::with_defaults(2);
        let v = mg.device_mut(0).alloc_mat(100_000, 2);
        mg.run(|i, d| {
            if i == 0 {
                d.dot_cols(v, 0, 1);
            }
        });
        mg.sync();
        assert_eq!(mg.device(0).clock(), mg.device(1).clock());
        assert_eq!(mg.host_time(), mg.device(0).clock());
    }

    #[test]
    fn transfers_overlap_across_links() {
        // two devices sending the same payload should cost about one
        // transfer, not two (separate links).
        let mut mg1 = MultiGpu::with_defaults(1);
        mg1.to_host(&[1_000_000]);
        let t1 = mg1.host_time();
        let mut mg2 = MultiGpu::with_defaults(2);
        mg2.to_host(&[1_000_000, 1_000_000]);
        let t2 = mg2.host_time();
        assert!(t2 < 1.2 * t1, "no overlap: {t2} vs {t1}");
    }

    #[test]
    fn remote_node_devices_pay_network_hop() {
        use crate::model::KernelConfig;
        let model = crate::model::PerfModel::default();
        let expected_local = model.pcie_time(1000);
        let expected_remote = model.remote_link_time(1000);
        assert!(expected_remote > expected_local);
        let mut mg = MultiGpu::with_topology(vec![0, 1], model, KernelConfig::default());
        assert_eq!(mg.node_of(0), 0);
        assert_eq!(mg.node_of(1), 1);
        mg.to_host(&[1000, 0]);
        let t_local = mg.host_time();
        mg.reset_time();
        mg.to_host(&[0, 1000]);
        let t_remote = mg.host_time();
        assert!(t_remote > t_local, "remote {t_remote} vs local {t_local}");
    }

    #[test]
    fn reset_time_clears_everything() {
        let mut mg = MultiGpu::with_defaults(2);
        mg.to_host(&[8, 8]);
        mg.host_compute(1e9, 1e6);
        mg.reset_time();
        assert_eq!(mg.time(), 0.0);
        assert_eq!(mg.counters(), CommCounters::default());
    }
}
