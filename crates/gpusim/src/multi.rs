//! The multi-GPU executor: parallel device phases, PCIe transfers with
//! overlap across per-GPU links, host compute, and communication counters.
//!
//! Timing semantics mirror the paper's execution model:
//!
//! * device kernels launched in a phase run concurrently across GPUs —
//!   [`MultiGpu::run_map`] executes them on real host threads (rayon) and
//!   advances each device's private clock independently;
//! * device→host transfers are asynchronous per-GPU (each Keeneland GPU
//!   has its own PCIe link): the host becomes ready at
//!   `max_d(device_finish_d + transfer_d)` plus a per-message host
//!   overhead — so aggregating messages still pays off, exactly the
//!   latency effect CA methods exploit;
//! * host→device transfers make each device wait for `host_ready +
//!   transfer_d`;
//! * nothing ever waits unless a transfer creates the dependency, so MPK's
//!   communication-free flops genuinely overlap in the model.
//!
//! Transfers are built on the stream/event substrate ([`crate::stream`]):
//! every copy occupies the device's per-link [`CopyEngine`] (copies on one
//! link serialize, links overlap) and records an [`Event`] carrying its
//! completion timestamp. The blocking `to_host`/`to_devices` API is a thin
//! wrapper — enqueue the async copies, then wait on their events — so
//! callers migrate incrementally. Which waits `sync()` actually performs
//! is a [`Schedule`] policy: `Barrier` (default) flattens clocks at phase
//! boundaries; `EventDriven` makes `sync()` a no-op so only real
//! dependencies (queue order, events, transfers) order the timeline.

use crate::device::Device;
use crate::faults::{FaultPlan, GpuSimError, Result};
use crate::model::{KernelConfig, PerfModel};
use crate::retry::RetryPolicy;
use crate::stream::{Cmd, CopyEngine, Event, EventTable, Schedule};
use ca_obs as obs;
use ca_scalar::Precision;
use rayon::prelude::*;
use std::sync::Arc;

/// Counters for the traffic study (Fig. 7 and the "# GPU-CPU comm." column
/// of Fig. 10). Totals cover all traffic regardless of precision; the
/// `*_f32` fields count the subset of messages the caller tagged as
/// single-precision payloads (mixed-precision halos), so a study can
/// assert what fraction of the wire traffic moved at half width.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommCounters {
    /// Device→host messages.
    pub msgs_to_host: u64,
    /// Host→device messages.
    pub msgs_to_dev: u64,
    /// Device→host bytes.
    pub bytes_to_host: u64,
    /// Host→device bytes.
    pub bytes_to_dev: u64,
    /// Device→host messages carrying f32 payloads (subset of the total).
    pub msgs_to_host_f32: u64,
    /// Host→device messages carrying f32 payloads (subset of the total).
    pub msgs_to_dev_f32: u64,
    /// Device→host bytes in f32 payloads (subset of the total).
    pub bytes_to_host_f32: u64,
    /// Host→device bytes in f32 payloads (subset of the total).
    pub bytes_to_dev_f32: u64,
    /// Transfer attempts repeated after an injected transient fault (each
    /// retry also paid link time + stall, so resilience cost is visible).
    pub transfer_retries: u64,
}

impl CommCounters {
    /// Total messages both directions.
    pub fn total_msgs(&self) -> u64 {
        self.msgs_to_host + self.msgs_to_dev
    }

    /// Total bytes both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_to_host + self.bytes_to_dev
    }

    /// Total f32-tagged bytes both directions (subset of
    /// [`CommCounters::total_bytes`]).
    pub fn total_bytes_f32(&self) -> u64 {
        self.bytes_to_host_f32 + self.bytes_to_dev_f32
    }

    /// Element-wise sum — used to carry traffic totals across an executor
    /// rebuild (degradation, rebalancing) so a solve's counters stay
    /// end-to-end.
    pub fn merged(self, other: CommCounters) -> CommCounters {
        CommCounters {
            msgs_to_host: self.msgs_to_host + other.msgs_to_host,
            msgs_to_dev: self.msgs_to_dev + other.msgs_to_dev,
            bytes_to_host: self.bytes_to_host + other.bytes_to_host,
            bytes_to_dev: self.bytes_to_dev + other.bytes_to_dev,
            msgs_to_host_f32: self.msgs_to_host_f32 + other.msgs_to_host_f32,
            msgs_to_dev_f32: self.msgs_to_dev_f32 + other.msgs_to_dev_f32,
            bytes_to_host_f32: self.bytes_to_host_f32 + other.bytes_to_host_f32,
            bytes_to_dev_f32: self.bytes_to_dev_f32 + other.bytes_to_dev_f32,
            transfer_retries: self.transfer_retries + other.transfer_retries,
        }
    }
}

/// One device's entry in a [`HealthReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceHealth {
    /// Device index.
    pub device: usize,
    /// Whether the device is still reachable (not lost).
    pub alive: bool,
    /// Kernel ops retired.
    pub ops: u64,
    /// Observed kernel seconds (includes fail-slow perturbation).
    pub busy_s: f64,
    /// Modeled kernel seconds (healthy-device cost of the same commands).
    pub modeled_busy_s: f64,
    /// EWMA of per-command observed/modeled latency (1.0 = healthy).
    pub ewma_slowdown: f64,
    /// Worst single-command overshoot, seconds.
    pub max_overshoot_s: f64,
}

/// Per-device health snapshot the driver consults at restart boundaries:
/// who is alive, how far each device's observed command latency has
/// drifted from the model, and the relative throughput weights a
/// row-rebalancing step should use.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// One entry per device, in device order.
    pub devices: Vec<DeviceHealth>,
}

impl HealthReport {
    /// Relative throughput per device: the reciprocal of the latency EWMA
    /// for alive devices, 0.0 for lost ones. A row partition proportional
    /// to these weights equalizes per-device compute time.
    pub fn throughput_weights(&self) -> Vec<f64> {
        self.devices
            .iter()
            .map(|d| if d.alive { 1.0 / d.ewma_slowdown.max(f64::MIN_POSITIVE) } else { 0.0 })
            .collect()
    }

    /// Max/min latency EWMA over alive devices (1.0 = perfectly even;
    /// grows toward the slowdown factor as one device degrades).
    pub fn imbalance(&self) -> f64 {
        let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
        for d in self.devices.iter().filter(|d| d.alive) {
            lo = lo.min(d.ewma_slowdown);
            hi = hi.max(d.ewma_slowdown);
        }
        if lo > 0.0 && lo.is_finite() {
            hi / lo
        } else {
            1.0
        }
    }
}

/// A host plus `n` simulated GPUs, optionally spread over several compute
/// nodes (the paper's §VII outlook). Devices on node 0 talk to the root
/// host over PCIe only; devices on other nodes pay an additional network
/// hop per message.
#[derive(Debug)]
pub struct MultiGpu {
    devices: Vec<Device>,
    host_time: f64,
    model: Arc<PerfModel>,
    /// Kernel variants orthogonalization routines should use.
    pub config: KernelConfig,
    counters: CommCounters,
    /// Compute-node assignment per device (all zeros = single node).
    node_of: Vec<usize>,
    /// Installed fault schedule (None = perfect machine).
    faults: Option<Arc<FaultPlan>>,
    /// Monotone transfer-message counter (fault-plan coordinate).
    msg_counter: u64,
    /// Bounded attempts (plus optional simulated-time backoff) per
    /// transfer message before giving up.
    transfer_retry: RetryPolicy,
    /// Scheduling policy: `Barrier` (default) or `EventDriven`.
    schedule: Schedule,
    /// Recorded event timestamps (copies, explicit records).
    events: EventTable,
    /// Per-device PCIe link timelines (one copy engine each).
    links: Vec<CopyEngine>,
    /// Simulated seconds the watchdog took back by rewinding a hung
    /// device's projected queue tail to its detection instant. An earlier
    /// [`MultiGpu::time`] sample may have included the rewound tail, so
    /// observers that charged phase time from such samples can overcount
    /// end-to-end time by at most this much.
    time_reclaimed: f64,
}

impl MultiGpu {
    /// Create `n_gpus` devices with the given model and kernel config.
    pub fn new(n_gpus: usize, model: PerfModel, config: KernelConfig) -> Self {
        assert!(n_gpus >= 1);
        let model = Arc::new(model);
        let devices = (0..n_gpus).map(|i| Device::new(i, Arc::clone(&model))).collect();
        Self {
            devices,
            host_time: 0.0,
            model,
            config,
            counters: CommCounters::default(),
            node_of: vec![0; n_gpus],
            faults: None,
            msg_counter: 0,
            transfer_retry: RetryPolicy::default(),
            schedule: Schedule::default(),
            events: EventTable::default(),
            links: vec![CopyEngine::default(); n_gpus],
            time_reclaimed: 0.0,
        }
    }

    /// Set the scheduling policy. Numerics are unaffected — commands
    /// execute eagerly in program order under either policy; only the
    /// simulated clocks differ (and event-driven time never exceeds
    /// barrier time for the same program).
    pub fn set_schedule(&mut self, schedule: Schedule) {
        self.schedule = schedule;
    }

    /// Current scheduling policy.
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// Install a fault schedule, shared by the executor (transfer faults)
    /// and every device (SDC, loss, allocation faults). A plan with all
    /// rates at zero is bit-identical to no plan.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        let plan = Arc::new(plan);
        for d in &mut self.devices {
            d.set_faults(Some(Arc::clone(&plan)));
        }
        self.faults = Some(plan);
    }

    /// Remove the fault schedule (future ops run on the perfect machine;
    /// an already-lost device stays lost).
    pub fn clear_fault_plan(&mut self) {
        for d in &mut self.devices {
            d.set_faults(None);
        }
        self.faults = None;
    }

    /// The installed fault schedule, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_deref()
    }

    /// Bound the attempts per transfer message (first try + retries).
    /// Convenience wrapper over [`MultiGpu::set_transfer_retry`] that
    /// keeps the attempt-count-only shape of the old knob (no backoff).
    pub fn set_max_transfer_attempts(&mut self, attempts: u32) {
        self.transfer_retry = RetryPolicy { max_attempts: attempts, ..self.transfer_retry };
        assert!(attempts >= 1);
    }

    /// Install the transfer retry policy (attempt bound plus optional
    /// capped exponential simulated-time backoff between attempts).
    pub fn set_transfer_retry(&mut self, policy: RetryPolicy) {
        assert!(policy.max_attempts >= 1);
        self.transfer_retry = policy;
    }

    /// The transfer retry policy in effect.
    pub fn transfer_retry(&self) -> RetryPolicy {
        self.transfer_retry
    }

    /// Devices that are still alive (not lost).
    pub fn alive_devices(&self) -> Vec<usize> {
        (0..self.devices.len()).filter(|&d| !self.devices[d].is_lost()).collect()
    }

    /// Index of the first lost device, if any.
    pub fn lost_device(&self) -> Option<usize> {
        (0..self.devices.len()).find(|&d| self.devices[d].is_lost())
    }

    // ---------- health monitoring ----------

    /// Snapshot every device's health: observed vs. modeled busy time and
    /// the per-command latency EWMA the devices maintain as commands
    /// retire (the same observed/modeled ratio a host-side monitor would
    /// extract from `StreamTrace` timestamps, kept incrementally so it is
    /// available without enabling the trace).
    pub fn health_report(&self) -> HealthReport {
        let devices = self
            .devices
            .iter()
            .map(|d| DeviceHealth {
                device: d.id(),
                alive: !d.is_lost(),
                ops: d.ops(),
                busy_s: d.busy_time(),
                modeled_busy_s: d.modeled_busy_time(),
                ewma_slowdown: d.ewma_slowdown(),
                max_overshoot_s: d.max_overshoot(),
            })
            .collect();
        HealthReport { devices }
    }

    /// Watchdog sweep: any alive device whose worst single-command
    /// overshoot (observed − modeled latency) exceeds `hang_timeout_s` is
    /// declared hung and marked lost, feeding the same skip-lost-devices
    /// degradation path a fault-plan device loss takes. The hung device's
    /// frozen clock is set to the instant the watchdog gave up — the rest
    /// of the machine's progress plus the timeout — not the (possibly
    /// enormous) stalled queue tail, so end-to-end time stays honest.
    /// Returns the devices newly declared lost.
    pub fn watchdog(&mut self, hang_timeout_s: f64) -> Vec<usize> {
        assert!(hang_timeout_s > 0.0);
        let hung: Vec<usize> = (0..self.devices.len())
            .filter(|&d| {
                !self.devices[d].is_lost() && self.devices[d].max_overshoot() > hang_timeout_s
            })
            .collect();
        if hung.is_empty() {
            return hung;
        }
        let t_before = self.time();
        // progress of everything that is not hung, at the moment of detection
        let t_rest = self
            .devices
            .iter()
            .filter(|d| !d.is_lost() && !hung.contains(&d.id()))
            .map(|d| d.clock())
            .fold(self.host_time, f64::max);
        for &d in &hung {
            let overshoot = self.devices[d].max_overshoot();
            self.devices[d].set_clock(t_rest + hang_timeout_s);
            self.devices[d].mark_lost();
            if obs::enabled() {
                obs::instant_cause(
                    "watchdog.hang",
                    obs::Track::Device(d as u32),
                    t_rest + hang_timeout_s,
                    &format!(
                        "overshoot {overshoot:.6}s > timeout {hang_timeout_s:.6}s; \
                         device {d} marked lost"
                    ),
                );
                obs::counter_add(obs::names::WATCHDOG_ESCALATIONS, 1);
            }
        }
        // the rewind can lower the end-to-end clock below values already
        // observed through `time()` — account the difference so phase
        // attribution charged from those samples stays auditable
        self.time_reclaimed += (t_before - self.time()).max(0.0);
        hung
    }

    /// Total simulated seconds of projected (but never completed) stall
    /// tail the watchdog has taken back from the end-to-end clock.
    pub fn time_reclaimed(&self) -> f64 {
        self.time_reclaimed
    }

    /// Carry a predecessor executor's reclaimed-time total across a
    /// rebuild (the counterpart of [`MultiGpu::absorb_counters`]).
    pub fn absorb_time_reclaimed(&mut self, prior: f64) {
        self.time_reclaimed += prior;
    }

    /// One transfer message on device `d`'s link: draw transient faults,
    /// retry up to the attempt bound, and return the simulated duration the
    /// message occupied the link (successful attempt plus every failed one,
    /// each failed attempt costing the wasted link time plus the stall).
    fn message_time(&mut self, d: usize, bytes: usize) -> Result<f64> {
        if self.devices[d].is_lost() {
            return Err(GpuSimError::DeviceLost { device: d });
        }
        let mut base = self.link_time(d, bytes);
        let msg = self.msg_counter;
        self.msg_counter += 1;
        let Some(plan) = self.faults.as_ref() else {
            return Ok(base);
        };
        // degraded link (fail-slow): every attempt on this link runs slow.
        // Gated on a non-unit factor so a zero-rate plan stays bit-identical.
        let lm = plan.link_multiplier(d);
        if lm != 1.0 {
            base *= lm;
        }
        let mut elapsed = 0.0;
        let policy = self.transfer_retry;
        for attempt in 0..policy.max_attempts {
            // backoff before re-try `attempt`; zero (the default) adds
            // nothing, keeping pre-backoff runs bit-identical
            let wait = policy.backoff_s(attempt);
            if wait > 0.0 {
                elapsed += wait;
            }
            if !plan.transfer_fails(d, msg, attempt) {
                if attempt > 0 {
                    obs::counter_add(obs::names::COMM_TRANSFER_RETRIES, u64::from(attempt));
                }
                return Ok(elapsed + base);
            }
            elapsed += base + plan.transfer_stall_s;
            self.counters.transfer_retries += 1;
        }
        // the final drawn attempt failed too: the message is abandoned, but
        // the wasted attempts still happened in simulated time
        self.counters.transfer_retries -= 1; // last attempt was not retried
        self.host_time += elapsed;
        if obs::enabled() {
            obs::counter_add(obs::names::COMM_TRANSFER_RETRIES, u64::from(policy.max_attempts - 1));
            obs::counter_add(obs::names::COMM_TRANSFERS_ABANDONED, 1);
        }
        Err(GpuSimError::TransferFailed { device: d, attempts: policy.max_attempts })
    }

    /// Create devices spread over compute nodes: `node_of[d]` is device
    /// d's node; devices off node 0 pay a network hop per host message.
    pub fn with_topology(node_of: Vec<usize>, model: PerfModel, config: KernelConfig) -> Self {
        let mut mg = Self::new(node_of.len(), model, config);
        mg.node_of = node_of;
        mg
    }

    /// Node assignment of a device.
    pub fn node_of(&self, d: usize) -> usize {
        self.node_of[d]
    }

    fn link_time(&self, d: usize, bytes: usize) -> f64 {
        if self.node_of[d] == 0 {
            self.model.pcie_time(bytes)
        } else {
            self.model.remote_link_time(bytes)
        }
    }

    /// Default model + default (optimized-kernel) config.
    pub fn with_defaults(n_gpus: usize) -> Self {
        Self::new(n_gpus, PerfModel::default(), KernelConfig::default())
    }

    /// Number of GPUs.
    pub fn n_gpus(&self) -> usize {
        self.devices.len()
    }

    /// The machine model.
    pub fn model(&self) -> &PerfModel {
        &self.model
    }

    /// Borrow a device (host-side inspection).
    pub fn device(&self, d: usize) -> &Device {
        &self.devices[d]
    }

    /// Mutably borrow a device (setup-time loading).
    pub fn device_mut(&mut self, d: usize) -> &mut Device {
        &mut self.devices[d]
    }

    // ---------- execution ----------

    /// Run `f` on every device concurrently (real threads), collecting the
    /// per-device results. Device clocks advance independently — no
    /// implicit barrier.
    pub fn run_map<R, F>(&mut self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &mut Device) -> R + Sync,
    {
        self.devices.par_iter_mut().enumerate().map(|(i, d)| f(i, d)).collect()
    }

    /// Run `f` on every device concurrently, discarding results.
    pub fn run<F>(&mut self, f: F)
    where
        F: Fn(usize, &mut Device) + Sync,
    {
        self.devices.par_iter_mut().enumerate().for_each(|(i, d)| f(i, d));
    }

    // ---------- simulated time ----------

    /// Current end-to-end simulated time (max over host and devices).
    pub fn time(&self) -> f64 {
        self.devices.iter().map(|d| d.clock()).fold(self.host_time, f64::max)
    }

    /// Host clock only.
    pub fn host_time(&self) -> f64 {
        self.host_time
    }

    /// Barrier: align every clock to the current max (used at phase
    /// boundaries so per-phase timings attribute cleanly). Lost devices
    /// are skipped — their clocks are frozen at the instant of loss and a
    /// barrier must not thaw them. Under [`Schedule::EventDriven`] this is
    /// a no-op: time is computed from the dependency graph, and end-to-end
    /// time remains observable via [`MultiGpu::time`] without flattening.
    pub fn sync(&mut self) {
        if self.schedule == Schedule::EventDriven {
            return;
        }
        let t = self.time();
        self.host_time = t;
        for d in &mut self.devices {
            if d.is_lost() {
                continue;
            }
            d.set_clock(t);
        }
    }

    /// Advance every clock to at least `t`. Used when a degraded executor
    /// (rebuilt on the surviving devices after a loss) inherits the
    /// simulated time already spent on its predecessor, so end-to-end
    /// timing stays honest across the recovery. Lost devices keep their
    /// frozen clocks.
    pub fn fast_forward(&mut self, t: f64) {
        self.host_time = self.host_time.max(t);
        for d in &mut self.devices {
            if d.is_lost() {
                continue;
            }
            d.set_clock(d.clock().max(t));
        }
    }

    /// Charge host compute (small dense factorizations, reductions).
    pub fn host_compute(&mut self, flops: f64, bytes: f64) {
        self.host_time += self.model.host_time(flops, bytes);
    }

    /// Advance the host clock by an explicit amount (CPU-side reference
    /// kernels whose cost is computed by the caller).
    pub fn advance_host(&mut self, dt: f64) {
        debug_assert!(dt >= 0.0);
        self.host_time += dt;
    }

    // ---------- events ----------

    /// Record an event on device `d`'s queue: a handle carrying the
    /// current queue tail as its completion timestamp.
    pub fn record_event(&mut self, d: usize) -> Event {
        let at = self.devices[d].clock();
        let ev = self.events.record(at);
        self.devices[d].log_cmd(Cmd::EventRecord { event: ev, at });
        ev
    }

    /// Record an event carrying the current host clock.
    pub fn record_host_event(&mut self) -> Event {
        self.events.record(self.host_time)
    }

    /// The completion timestamp an event carries.
    pub fn event_time(&self, e: Event) -> f64 {
        self.events.time(e)
    }

    /// Make device `d`'s queue wait for an event: its next command starts
    /// no earlier than the event's timestamp (the `waited_events` term of
    /// the start-time rule).
    ///
    /// # Errors
    /// [`GpuSimError::DeviceLost`] if the device has died — including
    /// *after* the copy that recorded the event was issued. An in-flight
    /// transfer to a device that is lost mid-flight resolves typed here
    /// instead of leaving the consumer stuck on a dangling event.
    pub fn wait_event(&mut self, d: usize, e: Event) -> Result<()> {
        if self.devices[d].is_lost() {
            return Err(GpuSimError::DeviceLost { device: d });
        }
        let t = self.events.time(e);
        self.devices[d].wait_until(t, e);
        Ok(())
    }

    /// Make the host clock wait for an event (no per-message charge; use
    /// [`MultiGpu::host_wait_all`] to consume transfer events with the
    /// per-message host handling the blocking API charges).
    pub fn host_wait_event(&mut self, e: Event) {
        self.host_time = self.host_time.max(self.events.time(e));
    }

    /// Host-side completion of a batch of async device→host copies: wait
    /// until every event has fired, then pay per-message host handling —
    /// exactly the blocking [`MultiGpu::to_host`] semantics.
    pub fn host_wait_all(&mut self, events: &[Option<Event>]) {
        let mut ready = self.host_time;
        let mut msgs = 0u64;
        for e in events.iter().flatten() {
            ready = ready.max(self.events.time(*e));
            msgs += 1;
        }
        self.host_time = ready + msgs as f64 * self.model.host_msg_s;
    }

    // ---------- transfers ----------

    /// Enqueue one async device→host copy on device `d`'s link: the copy
    /// starts once the device's queue reaches it and its link is free
    /// (start-time rule over the link timeline), and the returned event
    /// fires on arrival. The device itself does not block.
    ///
    /// # Errors
    /// [`GpuSimError::DeviceLost`] if the sending device has died;
    /// [`GpuSimError::TransferFailed`] past the retry bound.
    pub fn copy_to_host_async(&mut self, d: usize, bytes: usize) -> Result<Event> {
        self.copy_to_host_async_prec(d, bytes, Precision::F64)
    }

    /// [`MultiGpu::copy_to_host_async`] with the payload tagged by
    /// precision. `bytes` is the actual wire size (already computed at the
    /// payload's width by the caller); an `F32` tag additionally books the
    /// message into the f32-split counters and metrics. `F64` is exactly
    /// the plain call.
    ///
    /// # Errors
    /// See [`MultiGpu::copy_to_host_async`].
    pub fn copy_to_host_async_prec(
        &mut self,
        d: usize,
        bytes: usize,
        prec: Precision,
    ) -> Result<Event> {
        let dur = self.message_time(d, bytes)?;
        let (start, finish) = self.links[d].occupy(self.devices[d].clock(), dur);
        self.counters.msgs_to_host += 1;
        self.counters.bytes_to_host += bytes as u64;
        if prec == Precision::F32 {
            self.counters.msgs_to_host_f32 += 1;
            self.counters.bytes_to_host_f32 += bytes as u64;
        }
        if obs::enabled() {
            obs::counter_add(obs::names::COMM_D2H_MSGS, 1);
            obs::counter_add(obs::names::COMM_D2H_BYTES, bytes as u64);
            obs::counter_add(&obs::names::comm_link_bytes(d as u32, "d2h", false), bytes as u64);
            if prec == Precision::F32 {
                obs::counter_add(obs::names::COMM_D2H_BYTES_F32, bytes as u64);
                obs::counter_add(&obs::names::comm_link_bytes(d as u32, "d2h", true), bytes as u64);
            }
        }
        let ev = self.events.record(finish);
        self.devices[d].log_cmd(Cmd::CopyToHost { bytes, start, finish });
        self.devices[d].log_cmd(Cmd::EventRecord { event: ev, at: finish });
        Ok(ev)
    }

    /// Enqueue one async host→device copy on device `d`'s link: the copy
    /// starts once the host clock reaches it and the link is free, and the
    /// returned event fires on device-side arrival. Neither the host nor
    /// the device blocks — pass the event to [`MultiGpu::wait_event`]
    /// before the device consumes the data.
    ///
    /// # Errors
    /// [`GpuSimError::DeviceLost`] if the receiving device has died;
    /// [`GpuSimError::TransferFailed`] past the retry bound.
    pub fn copy_to_device_async(&mut self, d: usize, bytes: usize) -> Result<Event> {
        self.copy_to_device_async_prec(d, bytes, Precision::F64)
    }

    /// [`MultiGpu::copy_to_device_async`] with the payload tagged by
    /// precision (see [`MultiGpu::copy_to_host_async_prec`]).
    ///
    /// # Errors
    /// See [`MultiGpu::copy_to_device_async`].
    pub fn copy_to_device_async_prec(
        &mut self,
        d: usize,
        bytes: usize,
        prec: Precision,
    ) -> Result<Event> {
        let dur = self.message_time(d, bytes)?;
        let (start, finish) = self.links[d].occupy(self.host_time, dur);
        self.counters.msgs_to_dev += 1;
        self.counters.bytes_to_dev += bytes as u64;
        if prec == Precision::F32 {
            self.counters.msgs_to_dev_f32 += 1;
            self.counters.bytes_to_dev_f32 += bytes as u64;
        }
        if obs::enabled() {
            obs::counter_add(obs::names::COMM_H2D_MSGS, 1);
            obs::counter_add(obs::names::COMM_H2D_BYTES, bytes as u64);
            obs::counter_add(&obs::names::comm_link_bytes(d as u32, "h2d", false), bytes as u64);
            if prec == Precision::F32 {
                obs::counter_add(obs::names::COMM_H2D_BYTES_F32, bytes as u64);
                obs::counter_add(&obs::names::comm_link_bytes(d as u32, "h2d", true), bytes as u64);
            }
        }
        let ev = self.events.record(finish);
        self.devices[d].log_cmd(Cmd::CopyToDevice { bytes, start, finish });
        self.devices[d].log_cmd(Cmd::EventRecord { event: ev, at: finish });
        Ok(ev)
    }

    /// Enqueue async device→host copies, one per device with `bytes[d]`
    /// bytes (0 = no message). Returns each device's arrival event; links
    /// overlap. Combine with [`MultiGpu::host_wait_all`] to reproduce the
    /// blocking semantics, or wait selectively to overlap host work with
    /// in-flight transfers.
    ///
    /// # Errors
    /// See [`MultiGpu::copy_to_host_async`].
    pub fn to_host_async(&mut self, bytes: &[usize]) -> Result<Vec<Option<Event>>> {
        self.to_host_async_prec(bytes, Precision::F64)
    }

    /// [`MultiGpu::to_host_async`] with every message tagged by precision.
    ///
    /// # Errors
    /// See [`MultiGpu::copy_to_host_async`].
    pub fn to_host_async_prec(
        &mut self,
        bytes: &[usize],
        prec: Precision,
    ) -> Result<Vec<Option<Event>>> {
        assert_eq!(bytes.len(), self.devices.len());
        let mut events = Vec::with_capacity(bytes.len());
        for (i, &b) in bytes.iter().enumerate() {
            events.push(if b == 0 {
                None
            } else {
                Some(self.copy_to_host_async_prec(i, b, prec)?)
            });
        }
        Ok(events)
    }

    /// Enqueue async host→device copies, one per device. Returns each
    /// device's arrival event; the receiving devices do *not* implicitly
    /// wait — call [`MultiGpu::wait_event`] per device before it touches
    /// the data (that wait is what lets other devices and earlier queue
    /// entries keep computing under the arriving payload).
    ///
    /// # Errors
    /// See [`MultiGpu::copy_to_device_async`].
    pub fn to_devices_async(&mut self, bytes: &[usize]) -> Result<Vec<Option<Event>>> {
        self.to_devices_async_prec(bytes, Precision::F64)
    }

    /// [`MultiGpu::to_devices_async`] with every message tagged by
    /// precision.
    ///
    /// # Errors
    /// See [`MultiGpu::copy_to_device_async`].
    pub fn to_devices_async_prec(
        &mut self,
        bytes: &[usize],
        prec: Precision,
    ) -> Result<Vec<Option<Event>>> {
        assert_eq!(bytes.len(), self.devices.len());
        let mut events = Vec::with_capacity(bytes.len());
        for (i, &b) in bytes.iter().enumerate() {
            events.push(if b == 0 {
                None
            } else {
                Some(self.copy_to_device_async_prec(i, b, prec)?)
            });
        }
        Ok(events)
    }

    /// Device→host transfers, one message per device with `bytes[d]` bytes
    /// (0 = no message from that device). Links overlap; the host is ready
    /// once the slowest arrives, plus per-message host handling. This is
    /// the blocking wrapper over [`MultiGpu::to_host_async`] +
    /// [`MultiGpu::host_wait_all`].
    ///
    /// # Errors
    /// [`GpuSimError::DeviceLost`] if a sending device has died;
    /// [`GpuSimError::TransferFailed`] if a message keeps failing past the
    /// retry bound. Retries pay simulated link time + stall.
    pub fn to_host(&mut self, bytes: &[usize]) -> Result<()> {
        let events = self.to_host_async(bytes)?;
        self.host_wait_all(&events);
        Ok(())
    }

    /// Host→device transfers, one message per device. Each receiving
    /// device waits for its own arrival event; the host pays per-message
    /// handling. This is the blocking wrapper over
    /// [`MultiGpu::to_devices_async`] + per-device [`MultiGpu::wait_event`].
    ///
    /// # Errors
    /// [`GpuSimError::DeviceLost`] if a receiving device has died;
    /// [`GpuSimError::TransferFailed`] if a message keeps failing past the
    /// retry bound. Retries pay simulated link time + stall.
    pub fn to_devices(&mut self, bytes: &[usize]) -> Result<()> {
        let events = self.to_devices_async(bytes)?;
        let mut msgs = 0u64;
        for (i, e) in events.iter().enumerate() {
            if let Some(e) = e {
                self.wait_event(i, *e)?;
                msgs += 1;
            }
        }
        self.host_time += msgs as f64 * self.model.host_msg_s;
        Ok(())
    }

    /// Broadcast the same payload to all devices.
    ///
    /// # Errors
    /// See [`MultiGpu::to_devices`].
    pub fn broadcast(&mut self, bytes: usize) -> Result<()> {
        let v = vec![bytes; self.devices.len()];
        self.to_devices(&v)
    }

    /// Gather the same-size payload from all devices.
    ///
    /// # Errors
    /// See [`MultiGpu::to_host`].
    pub fn gather(&mut self, bytes: usize) -> Result<()> {
        let v = vec![bytes; self.devices.len()];
        self.to_host(&v)
    }

    // ---------- counters ----------

    /// Snapshot of the communication counters.
    pub fn counters(&self) -> CommCounters {
        self.counters
    }

    /// Reset the communication counters (per-phase studies).
    pub fn reset_counters(&mut self) {
        self.counters = CommCounters::default();
    }

    /// Fold a predecessor executor's counters into this one, so a rebuild
    /// (degradation onto survivors, row rebalancing) reports end-to-end
    /// traffic instead of forgetting everything before the rebuild.
    pub fn absorb_counters(&mut self, prior: CommCounters) {
        self.counters = self.counters.merged(prior);
    }

    /// Reset all clocks, link timelines, events, and counters (fresh
    /// timing run on loaded data). Event handles issued before the reset
    /// are invalidated — do not hold them across this call. Lost devices
    /// keep their frozen clocks.
    pub fn reset_time(&mut self) {
        self.host_time = 0.0;
        for d in &mut self.devices {
            if d.is_lost() {
                continue;
            }
            d.set_clock(0.0);
        }
        for l in &mut self.links {
            l.reset();
        }
        for d in &mut self.devices {
            d.clear_trace();
        }
        self.events.clear();
        self.reset_counters();
    }

    // ---------- command traces ----------

    /// Start recording every device's command queue (kernels, copies,
    /// event records/waits, with resolved timestamps). Off by default;
    /// used by the determinism suite to assert queue-replay bit-identity.
    pub fn enable_trace(&mut self) {
        for d in &mut self.devices {
            d.enable_trace();
        }
    }

    /// Drain the recorded per-device command traces.
    pub fn take_traces(&mut self) -> Vec<Vec<Cmd>> {
        self.devices.iter_mut().map(|d| d.take_trace()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_map_touches_every_device() {
        let mut mg = MultiGpu::with_defaults(3);
        let ids = mg.run_map(|i, d| {
            assert_eq!(i, d.id());
            i * 10
        });
        assert_eq!(ids, vec![0, 10, 20]);
    }

    #[test]
    fn device_clocks_independent_until_transfer() {
        let mut mg = MultiGpu::with_defaults(2);
        let v0 = mg.device_mut(0).alloc_mat(100_000, 2).unwrap();
        let v1 = mg.device_mut(1).alloc_mat(1_000, 2).unwrap();
        mg.run(|i, d| {
            let v = if i == 0 { v0 } else { v1 };
            d.dot_cols(v, 0, 1);
        });
        assert!(mg.device(0).clock() > mg.device(1).clock());
        // a broadcast aligns the laggard to at least host + latency
        mg.broadcast(8).unwrap();
        assert!(mg.device(1).clock() >= mg.model().pcie_latency_s);
    }

    #[test]
    fn to_host_waits_for_slowest() {
        let mut mg = MultiGpu::with_defaults(2);
        let v0 = mg.device_mut(0).alloc_mat(1_000_000, 2).unwrap();
        mg.run(|i, d| {
            if i == 0 {
                d.dot_cols(v0, 0, 1);
            }
        });
        let slow = mg.device(0).clock();
        mg.to_host(&[8, 8]).unwrap();
        assert!(mg.host_time() > slow);
        assert!(mg.host_time() >= slow + mg.model().pcie_latency_s);
    }

    #[test]
    fn zero_byte_messages_skipped() {
        let mut mg = MultiGpu::with_defaults(3);
        mg.to_host(&[0, 0, 0]).unwrap();
        assert_eq!(mg.counters().msgs_to_host, 0);
        assert_eq!(mg.host_time(), 0.0);
    }

    #[test]
    fn counters_accumulate() {
        let mut mg = MultiGpu::with_defaults(2);
        mg.to_host(&[100, 50]).unwrap();
        mg.broadcast(8).unwrap();
        let c = mg.counters();
        assert_eq!(c.msgs_to_host, 2);
        assert_eq!(c.bytes_to_host, 150);
        assert_eq!(c.msgs_to_dev, 2);
        assert_eq!(c.bytes_to_dev, 16);
        assert_eq!(c.total_msgs(), 4);
        mg.reset_counters();
        assert_eq!(mg.counters(), CommCounters::default());
    }

    #[test]
    fn f32_tagged_transfers_split_counters() {
        let mut mg = MultiGpu::with_defaults(2);
        // f64-tagged traffic leaves the f32 split at zero
        mg.to_host(&[100, 60]).unwrap();
        assert_eq!(mg.counters().bytes_to_host_f32, 0);
        assert_eq!(mg.counters().msgs_to_host_f32, 0);
        // f32-tagged traffic lands in both the totals and the split
        let up = mg.to_host_async_prec(&[40, 0], Precision::F32).unwrap();
        mg.host_wait_all(&up);
        let down = mg.to_devices_async_prec(&[0, 24], Precision::F32).unwrap();
        for (d, e) in down.iter().enumerate() {
            if let Some(e) = e {
                mg.wait_event(d, *e).unwrap();
            }
        }
        let c = mg.counters();
        assert_eq!(c.bytes_to_host, 200);
        assert_eq!(c.bytes_to_host_f32, 40);
        assert_eq!(c.msgs_to_host_f32, 1);
        assert_eq!(c.bytes_to_dev, 24);
        assert_eq!(c.bytes_to_dev_f32, 24);
        assert_eq!(c.msgs_to_dev_f32, 1);
        assert_eq!(c.total_bytes_f32(), 64);
        // the split survives merges
        let m = c.merged(c);
        assert_eq!(m.bytes_to_host_f32, 80);
        assert_eq!(m.msgs_to_dev_f32, 2);
    }

    #[test]
    fn prec_f64_transfers_bit_identical_to_plain() {
        let run = |tagged: bool| {
            let mut mg = MultiGpu::with_defaults(2);
            if tagged {
                let up = mg.to_host_async_prec(&[64, 256], Precision::F64).unwrap();
                mg.host_wait_all(&up);
            } else {
                mg.to_host(&[64, 256]).unwrap();
            }
            (mg.host_time().to_bits(), mg.counters())
        };
        let (h0, c0) = run(false);
        let (h1, c1) = run(true);
        assert_eq!(h0, h1);
        assert_eq!(c0, c1);
    }

    #[test]
    fn sync_aligns_clocks() {
        let mut mg = MultiGpu::with_defaults(2);
        let v = mg.device_mut(0).alloc_mat(100_000, 2).unwrap();
        mg.run(|i, d| {
            if i == 0 {
                d.dot_cols(v, 0, 1);
            }
        });
        mg.sync();
        assert_eq!(mg.device(0).clock(), mg.device(1).clock());
        assert_eq!(mg.host_time(), mg.device(0).clock());
    }

    #[test]
    fn transfers_overlap_across_links() {
        // two devices sending the same payload should cost about one
        // transfer, not two (separate links).
        let mut mg1 = MultiGpu::with_defaults(1);
        mg1.to_host(&[1_000_000]).unwrap();
        let t1 = mg1.host_time();
        let mut mg2 = MultiGpu::with_defaults(2);
        mg2.to_host(&[1_000_000, 1_000_000]).unwrap();
        let t2 = mg2.host_time();
        assert!(t2 < 1.2 * t1, "no overlap: {t2} vs {t1}");
    }

    #[test]
    fn remote_node_devices_pay_network_hop() {
        use crate::model::KernelConfig;
        let model = crate::model::PerfModel::default();
        let expected_local = model.pcie_time(1000);
        let expected_remote = model.remote_link_time(1000);
        assert!(expected_remote > expected_local);
        let mut mg = MultiGpu::with_topology(vec![0, 1], model, KernelConfig::default());
        assert_eq!(mg.node_of(0), 0);
        assert_eq!(mg.node_of(1), 1);
        mg.to_host(&[1000, 0]).unwrap();
        let t_local = mg.host_time();
        mg.reset_time();
        mg.to_host(&[0, 1000]).unwrap();
        let t_remote = mg.host_time();
        assert!(t_remote > t_local, "remote {t_remote} vs local {t_local}");
    }

    #[test]
    fn reset_time_clears_everything() {
        let mut mg = MultiGpu::with_defaults(2);
        mg.to_host(&[8, 8]).unwrap();
        mg.host_compute(1e9, 1e6);
        mg.reset_time();
        assert_eq!(mg.time(), 0.0);
        assert_eq!(mg.counters(), CommCounters::default());
    }

    #[test]
    fn transfer_retries_pay_time_and_count() {
        // clean run vs. fault run over the same messages: the faulty run
        // must be strictly slower and must record retries.
        let mut clean = MultiGpu::with_defaults(2);
        for _ in 0..50 {
            clean.to_host(&[1000, 1000]).unwrap();
        }
        let t_clean = clean.host_time();

        let mut faulty = MultiGpu::with_defaults(2);
        faulty.set_fault_plan(FaultPlan::new(11).with_transfer_faults(0.3));
        faulty.set_max_transfer_attempts(12); // never exhaust at rate 0.3
        for _ in 0..50 {
            faulty.to_host(&[1000, 1000]).unwrap();
        }
        let c = faulty.counters();
        assert!(c.transfer_retries > 0, "rate 0.3 over 100 messages must retry");
        assert!(faulty.host_time() > t_clean, "retries must cost simulated time");
        // message/byte counters count logical messages, not attempts
        assert_eq!(c.msgs_to_host, clean.counters().msgs_to_host);
        assert_eq!(c.bytes_to_host, clean.counters().bytes_to_host);
    }

    #[test]
    fn exhausted_retries_surface_typed_error() {
        let mut mg = MultiGpu::with_defaults(1);
        mg.set_fault_plan(FaultPlan::new(5).with_transfer_faults(1.0));
        mg.set_max_transfer_attempts(3);
        let err = mg.to_host(&[8]).unwrap_err();
        assert_eq!(err, GpuSimError::TransferFailed { device: 0, attempts: 3 });
    }

    #[test]
    fn lost_device_fails_transfers_but_not_others() {
        let mut mg = MultiGpu::with_defaults(2);
        mg.set_fault_plan(FaultPlan::new(0).with_device_loss(1, 0));
        let v = mg.device_mut(1).alloc_mat(10, 2).unwrap();
        mg.run(|i, d| {
            if i == 1 {
                d.dot_cols(v, 0, 1); // first op kills device 1
            }
        });
        assert!(mg.device(1).is_lost());
        assert_eq!(mg.alive_devices(), vec![0]);
        assert_eq!(mg.lost_device(), Some(1));
        // messages touching only device 0 still work
        mg.to_host(&[8, 0]).unwrap();
        // any message touching device 1 fails typed
        let err = mg.to_host(&[8, 8]).unwrap_err();
        assert_eq!(err, GpuSimError::DeviceLost { device: 1 });
        let err = mg.broadcast(8).unwrap_err();
        assert_eq!(err, GpuSimError::DeviceLost { device: 1 });
    }

    #[test]
    fn zero_rate_plan_transfers_bit_identical() {
        let run = |plan: Option<FaultPlan>| {
            let mut mg = MultiGpu::with_defaults(3);
            if let Some(p) = plan {
                mg.set_fault_plan(p);
            }
            mg.to_host(&[64, 128, 256]).unwrap();
            mg.broadcast(32).unwrap();
            mg.gather(16).unwrap();
            (mg.time(), mg.host_time(), mg.counters())
        };
        let (t0, h0, c0) = run(None);
        let (t1, h1, c1) = run(Some(FaultPlan::new(999)));
        assert_eq!(t0.to_bits(), t1.to_bits());
        assert_eq!(h0.to_bits(), h1.to_bits());
        assert_eq!(c0, c1);
    }

    #[test]
    fn sync_and_fast_forward_skip_lost_devices() {
        let mut mg = MultiGpu::with_defaults(2);
        mg.set_fault_plan(FaultPlan::new(0).with_device_loss(1, 0));
        let v1 = mg.device_mut(1).alloc_mat(10, 2).unwrap();
        let v0 = mg.device_mut(0).alloc_mat(100_000, 2).unwrap();
        mg.run(|i, d| {
            if i == 1 {
                d.dot_cols(v1, 0, 1); // first op kills device 1
            }
        });
        assert!(mg.device(1).is_lost());
        let frozen = mg.device(1).clock();
        mg.run(|i, d| {
            if i == 0 {
                d.dot_cols(v0, 0, 1);
            }
        });
        mg.sync();
        assert_eq!(mg.device(1).clock(), frozen, "sync must not thaw a frozen clock");
        assert!(mg.device(0).clock() > frozen);
        mg.fast_forward(mg.time() + 1.0);
        assert_eq!(mg.device(1).clock(), frozen, "fast_forward must not thaw a frozen clock");
    }

    #[test]
    fn event_driven_sync_is_noop() {
        let mut mg = MultiGpu::with_defaults(2);
        mg.set_schedule(Schedule::EventDriven);
        assert_eq!(mg.schedule(), Schedule::EventDriven);
        let v = mg.device_mut(0).alloc_mat(100_000, 2).unwrap();
        mg.run(|i, d| {
            if i == 0 {
                d.dot_cols(v, 0, 1);
            }
        });
        let (c0, c1, h) = (mg.device(0).clock(), mg.device(1).clock(), mg.host_time());
        mg.sync();
        assert_eq!(mg.device(0).clock(), c0);
        assert_eq!(mg.device(1).clock(), c1);
        assert_eq!(mg.host_time(), h);
        // end-to-end time is still observable without flattening
        assert_eq!(mg.time(), c0);
    }

    #[test]
    fn events_carry_queue_timestamps() {
        let mut mg = MultiGpu::with_defaults(1);
        let v = mg.device_mut(0).alloc_mat(50_000, 2).unwrap();
        mg.run(|_, d| {
            d.dot_cols(v, 0, 1);
        });
        let e = mg.record_event(0);
        assert_eq!(mg.event_time(e), mg.device(0).clock());
        mg.host_wait_event(e);
        assert!(mg.host_time() >= mg.event_time(e));
        // waiting on an already-fired event does not move a later queue
        mg.run(|_, d| {
            d.dot_cols(v, 0, 1);
        });
        let tail = mg.device(0).clock();
        mg.wait_event(0, e).unwrap();
        assert_eq!(mg.device(0).clock(), tail);
    }

    #[test]
    fn same_link_copies_serialize_but_links_overlap() {
        let mut mg = MultiGpu::with_defaults(1);
        let e1 = mg.copy_to_host_async(0, 1_000_000).unwrap();
        let e2 = mg.copy_to_host_async(0, 1_000_000).unwrap();
        let one = mg.model().pcie_time(1_000_000);
        assert_eq!(mg.event_time(e1), one);
        assert!((mg.event_time(e2) - 2.0 * one).abs() < 1e-12, "same link must serialize");

        let mut mg2 = MultiGpu::with_defaults(2);
        let f0 = mg2.copy_to_host_async(0, 1_000_000).unwrap();
        let f1 = mg2.copy_to_host_async(1, 1_000_000).unwrap();
        assert_eq!(mg2.event_time(f0), mg2.event_time(f1), "separate links overlap");
    }

    #[test]
    fn async_prefetch_overlaps_compute() {
        // synchronous schedule: the device waits for the arrival, then
        // computes — transfer and kernel serialize
        let mut sync_mg = MultiGpu::with_defaults(1);
        let v = sync_mg.device_mut(0).alloc_mat(200_000, 2).unwrap();
        sync_mg.to_devices(&[1_000_000]).unwrap();
        sync_mg.run(|_, d| {
            d.dot_cols(v, 0, 1);
        });
        let t_sync = sync_mg.time();

        // stream schedule: enqueue the copy, compute under it, then wait
        let mut ev_mg = MultiGpu::with_defaults(1);
        let v2 = ev_mg.device_mut(0).alloc_mat(200_000, 2).unwrap();
        let e = ev_mg.copy_to_device_async(0, 1_000_000).unwrap();
        ev_mg.run(|_, d| {
            d.dot_cols(v2, 0, 1);
        });
        ev_mg.wait_event(0, e).unwrap();
        let t_event = ev_mg.time();
        assert!(t_event < t_sync, "overlap must hide transfer: {t_event} vs {t_sync}");
        assert!(t_event >= ev_mg.event_time(e), "the dependency is still honored");
    }

    #[test]
    fn eager_wrappers_match_async_plus_wait() {
        let run_eager = || {
            let mut mg = MultiGpu::with_defaults(2);
            mg.to_host(&[64, 256]).unwrap();
            mg.to_devices(&[128, 0]).unwrap();
            (mg.host_time(), mg.device(0).clock(), mg.device(1).clock(), mg.counters())
        };
        let run_async = || {
            let mut mg = MultiGpu::with_defaults(2);
            let up = mg.to_host_async(&[64, 256]).unwrap();
            mg.host_wait_all(&up);
            let down = mg.to_devices_async(&[128, 0]).unwrap();
            let mut msgs = 0u64;
            for (d, e) in down.iter().enumerate() {
                if let Some(e) = e {
                    mg.wait_event(d, *e).unwrap();
                    msgs += 1;
                }
            }
            mg.advance_host(msgs as f64 * mg.model().host_msg_s);
            (mg.host_time(), mg.device(0).clock(), mg.device(1).clock(), mg.counters())
        };
        let (h0, a0, b0, c0) = run_eager();
        let (h1, a1, b1, c1) = run_async();
        assert_eq!(h0.to_bits(), h1.to_bits());
        assert_eq!(a0.to_bits(), a1.to_bits());
        assert_eq!(b0.to_bits(), b1.to_bits());
        assert_eq!(c0, c1);
    }

    #[test]
    fn traces_record_copies_and_waits() {
        let mut mg = MultiGpu::with_defaults(2);
        mg.enable_trace();
        mg.to_devices(&[64, 64]).unwrap();
        mg.to_host(&[32, 0]).unwrap();
        let traces = mg.take_traces();
        assert!(traces[0].iter().any(|c| matches!(c, Cmd::CopyToDevice { bytes: 64, .. })));
        assert!(traces[0].iter().any(|c| matches!(c, Cmd::WaitEvent { .. })));
        assert!(traces[0].iter().any(|c| matches!(c, Cmd::CopyToHost { bytes: 32, .. })));
        assert!(traces[1].iter().all(|c| !matches!(c, Cmd::CopyToHost { .. })));
    }

    #[test]
    fn midflight_copy_to_lost_device_resolves_typed() {
        // regression: a copy issued while the device was alive must not
        // leave a silently-ignored dangling event if the device dies
        // before the consumer waits — the wait resolves to DeviceLost.
        let mut mg = MultiGpu::with_defaults(2);
        mg.set_fault_plan(FaultPlan::new(0).with_device_loss(1, 1));
        let v = mg.device_mut(1).alloc_mat(10, 2).unwrap();
        let e = mg.copy_to_device_async(1, 4096).unwrap(); // issued alive
        mg.run(|i, d| {
            if i == 1 {
                d.dot_cols(v, 0, 1); // op 1 survives...
                d.dot_cols(v, 0, 1); // ...op 2 kills device 1 mid-flight
            }
        });
        assert!(mg.device(1).is_lost());
        let err = mg.wait_event(1, e).unwrap_err();
        assert_eq!(err, GpuSimError::DeviceLost { device: 1 });
        // the other device's waits are unaffected
        let e0 = mg.copy_to_device_async(0, 64).unwrap();
        mg.wait_event(0, e0).unwrap();
    }

    #[test]
    fn slowdown_scales_clock_but_not_results() {
        let work = |mg: &mut MultiGpu| {
            let v = mg.device_mut(0).alloc_mat(50_000, 2).unwrap();
            mg.device_mut(0).mat_mut(v).set_col(0, &vec![2.0; 50_000]);
            mg.device_mut(0).mat_mut(v).set_col(1, &vec![3.0; 50_000]);
            mg.run_map(|_, d| d.dot_cols(v, 0, 1))[0]
        };
        let mut clean = MultiGpu::with_defaults(1);
        let r0 = work(&mut clean);
        let mut slow = MultiGpu::with_defaults(1);
        slow.set_fault_plan(FaultPlan::new(1).with_slowdown(0, 4.0, 0));
        let r1 = work(&mut slow);
        assert_eq!(r0.to_bits(), r1.to_bits(), "slowdown must not touch arithmetic");
        let (tc, ts) = (clean.device(0).clock(), slow.device(0).clock());
        assert!((ts - 4.0 * tc).abs() < 1e-12 * ts, "4x slowdown: {ts} vs {tc}");
        assert!(slow.device(0).ewma_slowdown() > 1.0);
        assert_eq!(clean.device(0).ewma_slowdown(), 1.0);
    }

    #[test]
    fn link_degrade_scales_transfers() {
        let mut clean = MultiGpu::with_defaults(2);
        clean.to_host(&[1_000_000, 1_000_000]).unwrap();
        let mut deg = MultiGpu::with_defaults(2);
        deg.set_fault_plan(FaultPlan::new(1).with_link_degrade(1, 3.0));
        deg.to_host(&[1_000_000, 1_000_000]).unwrap();
        assert!(deg.host_time() > clean.host_time());
        // counters unchanged: degradation is time, not traffic
        assert_eq!(deg.counters(), clean.counters());
    }

    #[test]
    fn zero_rate_perf_plan_bit_identical() {
        // unit factors and zero stall rate must be indistinguishable from
        // no plan at all: clocks, health accounting, counters.
        let run = |plan: Option<FaultPlan>| {
            let mut mg = MultiGpu::with_defaults(2);
            if let Some(p) = plan {
                mg.set_fault_plan(p);
            }
            let v = mg.device_mut(0).alloc_mat(10_000, 2).unwrap();
            mg.run(|i, d| {
                if i == 0 {
                    d.dot_cols(v, 0, 1);
                }
            });
            mg.to_host(&[64, 128]).unwrap();
            mg.broadcast(32).unwrap();
            (
                mg.time().to_bits(),
                mg.device(0).clock().to_bits(),
                mg.device(0).busy_time().to_bits(),
                mg.device(0).ewma_slowdown().to_bits(),
                mg.counters(),
            )
        };
        let a = run(None);
        let b = run(Some(
            FaultPlan::new(77)
                .with_slowdown(0, 1.0, 0)
                .with_link_degrade(1, 1.0)
                .with_stalls(0, 0.0, 5.0),
        ));
        assert_eq!(a, b);
    }

    #[test]
    fn watchdog_declares_hung_device_lost_with_honest_clock() {
        let mut mg = MultiGpu::with_defaults(2);
        // device 1 hangs 50 s on every op; device 0 is healthy
        mg.set_fault_plan(FaultPlan::new(4).with_stalls(1, 1.0, 50.0));
        let v0 = mg.device_mut(0).alloc_mat(10_000, 2).unwrap();
        let v1 = mg.device_mut(1).alloc_mat(10_000, 2).unwrap();
        mg.run(|i, d| {
            let v = if i == 0 { v0 } else { v1 };
            d.dot_cols(v, 0, 1);
        });
        // nothing hung yet by the 100 s standard, everything by 1 s
        assert!(mg.watchdog(100.0).is_empty());
        let hr = mg.health_report();
        assert!(hr.devices[1].max_overshoot_s > 1.0);
        assert!(hr.imbalance() > 1.0);
        let newly = mg.watchdog(1.0);
        assert_eq!(newly, vec![1]);
        assert!(mg.device(1).is_lost());
        // the frozen clock is detection time, not the 50 s queue tail
        let healthy = mg.device(0).clock();
        assert!((mg.device(1).clock() - (healthy + 1.0)).abs() < 1e-12);
        // the rewound tail is accounted: earlier time() samples saw the
        // stalled projection, and the difference is now auditable
        assert!(mg.time_reclaimed() > 40.0, "reclaimed {}", mg.time_reclaimed());
        // idempotent: a second sweep finds nothing new
        assert!(mg.watchdog(1.0).is_empty());
        // weights: lost device gets zero
        let w = mg.health_report().throughput_weights();
        assert_eq!(w[1], 0.0);
        assert!(w[0] > 0.0);
    }

    #[test]
    fn absorb_counters_merges() {
        let mut a = MultiGpu::with_defaults(1);
        a.to_host(&[100]).unwrap();
        let prior = a.counters();
        let mut b = MultiGpu::with_defaults(1);
        b.broadcast(50).unwrap();
        b.absorb_counters(prior);
        let c = b.counters();
        assert_eq!(c.msgs_to_host, 1);
        assert_eq!(c.bytes_to_host, 100);
        assert_eq!(c.msgs_to_dev, 1);
        assert_eq!(c.bytes_to_dev, 50);
    }

    #[test]
    fn reset_time_clears_link_timelines_and_events() {
        let mut mg = MultiGpu::with_defaults(1);
        let e = mg.copy_to_host_async(0, 1_000_000).unwrap();
        let first = mg.event_time(e);
        mg.reset_time();
        // after the reset the link is idle again: the same copy lands at
        // the same finish time instead of queuing behind the first
        let e2 = mg.copy_to_host_async(0, 1_000_000).unwrap();
        assert_eq!(mg.event_time(e2).to_bits(), first.to_bits());
    }
}
