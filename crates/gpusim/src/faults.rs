//! Deterministic fault injection for the simulated multi-GPU machine.
//!
//! A [`FaultPlan`] makes the simulator *hostile on demand*: silent data
//! corruption in kernel outputs (SpMV, GEMM, DOT), transient transfer
//! failures that stall the PCIe link, persistent device loss after a given
//! op count, and allocation failures. Every decision is a pure hash of
//! `(seed, device, op_index)` — no wall-clock randomness — so a faulty run
//! is exactly reproducible and a plan with all rates at zero is bit-
//! identical to running with no plan at all (clocks, counters, numerics).
//!
//! Failures surface as the typed [`GpuSimError`] instead of panics, so
//! solver layers can retry transfers, recompute corrupted blocks, or
//! redistribute a lost device's slice and keep going.

use std::fmt;

/// Typed failures of the simulated machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GpuSimError {
    /// Allocation would exceed the modeled device memory capacity (or an
    /// injected allocation fault fired).
    OutOfMemory {
        /// Device that refused the allocation.
        device: usize,
        /// Bytes requested.
        requested: usize,
        /// Bytes still free before the request.
        free: usize,
    },
    /// A transfer involving this device failed even after retries.
    TransferFailed {
        /// Device whose link failed.
        device: usize,
        /// Attempts made (including the first).
        attempts: u32,
    },
    /// The device died (persistent loss) and can no longer be reached.
    DeviceLost {
        /// The lost device.
        device: usize,
    },
}

impl fmt::Display for GpuSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuSimError::OutOfMemory { device, requested, free } => write!(
                f,
                "device {device} out of memory: {requested} bytes requested, {free} free \
                 (MPK boundary storage grows with s — see paper §IV-A; reduce s, \
                 use more GPUs, or raise PerfModel::dev_mem_capacity)"
            ),
            GpuSimError::TransferFailed { device, attempts } => {
                write!(f, "transfer on device {device} link failed after {attempts} attempts")
            }
            GpuSimError::DeviceLost { device } => write!(f, "device {device} lost"),
        }
    }
}

impl std::error::Error for GpuSimError {}

/// Result alias for simulator operations.
pub type Result<T> = std::result::Result<T, GpuSimError>;

/// Which kernel classes are eligible for silent data corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SdcTargets {
    /// Sparse matrix-vector kernels (SpMV / MPK steps).
    pub spmv: bool,
    /// Dense block products (SYRK / GEMM — the Gram matrices).
    pub gemm: bool,
    /// Scalar reductions (DOT / NRM2).
    pub dot: bool,
}

impl SdcTargets {
    /// Corrupt every eligible kernel class.
    pub fn all() -> Self {
        SdcTargets { spmv: true, gemm: true, dot: true }
    }

    /// Corrupt SpMV outputs only.
    pub fn spmv_only() -> Self {
        SdcTargets { spmv: true, ..Default::default() }
    }

    /// Corrupt GEMM/SYRK outputs only.
    pub fn gemm_only() -> Self {
        SdcTargets { gemm: true, ..Default::default() }
    }

    fn covers(&self, kind: SdcKind) -> bool {
        match kind {
            SdcKind::Spmv => self.spmv,
            SdcKind::Gemm => self.gemm,
            SdcKind::Dot => self.dot,
        }
    }
}

/// Kernel class of a corruption site (salts the hash so distinct kernel
/// classes draw independent streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SdcKind {
    /// SpMV / MPK step output.
    Spmv,
    /// SYRK / GEMM output.
    Gemm,
    /// DOT / reduction output.
    Dot,
}

impl SdcKind {
    fn salt(self) -> u64 {
        match self {
            SdcKind::Spmv => 0x5350_4d56,
            SdcKind::Gemm => 0x4745_4d4d,
            SdcKind::Dot => 0x0044_4f54,
        }
    }
}

/// One drawn corruption: which element of the kernel output to hit and
/// which bit of its f64 representation to flip.
#[derive(Debug, Clone, Copy)]
pub struct SdcEvent {
    /// Hash used to pick the element index (`lane % len`).
    pub lane: u64,
    /// Bit to flip (mantissa or low exponent; never the sign bit).
    pub bit: u32,
}

impl SdcEvent {
    /// Flip the planned bit of one element of `data`. No-op on empty data.
    pub fn apply(&self, data: &mut [f64]) {
        if data.is_empty() {
            return;
        }
        let i = (self.lane % data.len() as u64) as usize;
        data[i] = f64::from_bits(data[i].to_bits() ^ (1u64 << self.bit));
    }
}

/// Persistent device loss: the device executes `after_op` kernel ops, then
/// dies. Its clock freezes and any transfer touching it fails with
/// [`GpuSimError::DeviceLost`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceLoss {
    /// Device to kill.
    pub device: usize,
    /// Kernel ops the device completes before dying.
    pub after_op: u64,
}

/// Injected allocation failure: the `at_alloc`-th allocation on `device`
/// reports [`GpuSimError::OutOfMemory`] regardless of capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocFault {
    /// Device whose allocation fails.
    pub device: usize,
    /// Zero-based allocation index that fails.
    pub at_alloc: u64,
}

/// Sustained compute slowdown (fail-slow): every kernel on `device` from
/// op `after_op + 1` on takes `factor` times its modeled duration. The
/// arithmetic is untouched — only the clock runs slow, the signature of a
/// thermally throttled or partially degraded part.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slowdown {
    /// Device that runs slow.
    pub device: usize,
    /// Duration multiplier (≥ 1 models degradation; 1.0 is inert).
    pub factor: f64,
    /// Kernel ops the device completes at full speed before degrading.
    pub after_op: u64,
}

/// Degraded PCIe/NIC link (fail-slow): every transfer message touching
/// `device`'s link takes `factor` times its modeled duration — a flaky
/// riser, a renegotiated lane width, a congested NIC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkDegrade {
    /// Device whose link is degraded.
    pub device: usize,
    /// Transfer-duration multiplier (≥ 1; 1.0 is inert).
    pub factor: f64,
}

/// Intermittent queue stalls (fail-slow): each kernel op on `device`
/// independently freezes the queue for `stall_s` extra seconds with
/// probability `rate` (drawn from the seeded hash, so replays are
/// bit-identical). `rate = 1.0` with a large `stall_s` models a hung
/// device the watchdog must convert into a loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StallPlan {
    /// Device whose queue stalls.
    pub device: usize,
    /// Per-op stall probability.
    pub rate: f64,
    /// Fixed duration of each stall, seconds.
    pub stall_s: f64,
}

/// Seeded ill-conditioned basis perturbation (numerical fault): after a
/// generated s-step basis block passes its ABFT check, the last column of
/// the block is nudged toward its predecessor with weight drawn from the
/// plan hash, making the block nearly rank-deficient. This models the
/// numerical reality the paper's §IV-A caps guard against — monomial basis
/// vectors aligning with the dominant eigenvector — but on demand and
/// reproducibly, so the escalation ladder's cheap rungs can be exercised.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BasisPerturb {
    /// Per-block probability that the perturbation fires.
    pub rate: f64,
    /// Alignment strength in [0, 1]: the faulted column becomes
    /// `(1 - magnitude) * v_last + magnitude * v_prev` (1.0 = exact copy
    /// of the previous column, an instant rank deficiency).
    pub magnitude: f64,
}

/// Seeded near-singular Gram nudge (numerical fault): after the Gram
/// matrix `B = Vᵀ V` is reduced to the host inside CholQR/SVQR, its last
/// row/column is pulled toward a scaled copy of the first, driving the
/// smallest pivot toward zero. Exercises the Cholesky-breakdown path and
/// the condition monitor without touching device state (the nudge lives in
/// host arithmetic, exactly where a catastrophically cancelled reduction
/// would surface).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GramNudge {
    /// Per-factorization probability that the nudge fires.
    pub rate: f64,
    /// Blend weight in [0, 1] toward the rank-deficient Gram matrix
    /// (1.0 = exactly singular).
    pub scale: f64,
}

/// A seeded, deterministic fault schedule for one run.
///
/// The default plan (any seed, all rates zero, no loss) injects nothing
/// and perturbs nothing: op counting happens whether or not a plan is
/// installed, so `Some(FaultPlan::new(seed))` and `None` are bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed all decisions derive from.
    pub seed: u64,
    /// Per-eligible-kernel probability of corrupting one output element.
    pub sdc_rate: f64,
    /// Which kernel classes SDC may hit.
    pub sdc_targets: SdcTargets,
    /// Per-message probability that a transfer attempt fails.
    pub transfer_fail_rate: f64,
    /// Extra simulated seconds a failed transfer attempt costs (timeout +
    /// reissue), on top of the wasted link time.
    pub transfer_stall_s: f64,
    /// Optional persistent device loss.
    pub device_loss: Option<DeviceLoss>,
    /// Optional injected allocation failure.
    pub alloc_fault: Option<AllocFault>,
    /// Optional sustained compute slowdown (fail-slow).
    pub slowdown: Option<Slowdown>,
    /// Optional degraded transfer link (fail-slow).
    pub link_degrade: Option<LinkDegrade>,
    /// Optional intermittent queue stalls (fail-slow).
    pub stalls: Option<StallPlan>,
    /// Optional ill-conditioned basis perturbations (numerical fault).
    pub basis_perturb: Option<BasisPerturb>,
    /// Optional near-singular Gram nudges (numerical fault).
    pub gram_nudge: Option<GramNudge>,
    /// Optional forced cap-violating step size: the solver is made to run
    /// with this `s` regardless of what the planner chose, driving it past
    /// the static §IV-A stability caps so the escalation ladder (not the
    /// planner) has to save the run.
    pub s_override: Option<usize>,
}

impl FaultPlan {
    /// An inert plan: nothing fails until rates are raised.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            sdc_rate: 0.0,
            sdc_targets: SdcTargets::default(),
            transfer_fail_rate: 0.0,
            transfer_stall_s: 200e-6,
            device_loss: None,
            alloc_fault: None,
            slowdown: None,
            link_degrade: None,
            stalls: None,
            basis_perturb: None,
            gram_nudge: None,
            s_override: None,
        }
    }

    /// Builder: corrupt `targets` kernels with probability `rate` per op.
    pub fn with_sdc(mut self, rate: f64, targets: SdcTargets) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        self.sdc_rate = rate;
        self.sdc_targets = targets;
        self
    }

    /// Builder: fail transfer attempts with probability `rate` per message.
    pub fn with_transfer_faults(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        self.transfer_fail_rate = rate;
        self
    }

    /// Builder: kill `device` after it completes `after_op` kernel ops.
    pub fn with_device_loss(mut self, device: usize, after_op: u64) -> Self {
        self.device_loss = Some(DeviceLoss { device, after_op });
        self
    }

    /// Builder: fail the `at_alloc`-th allocation on `device`.
    pub fn with_alloc_fault(mut self, device: usize, at_alloc: u64) -> Self {
        self.alloc_fault = Some(AllocFault { device, at_alloc });
        self
    }

    /// Builder: slow `device`'s kernels by `factor` after it completes
    /// `after_op` ops at full speed. `factor = 1.0` is inert.
    pub fn with_slowdown(mut self, device: usize, factor: f64, after_op: u64) -> Self {
        assert!(factor >= 1.0, "a slowdown factor below 1 would be a speedup");
        self.slowdown = Some(Slowdown { device, factor, after_op });
        self
    }

    /// Builder: multiply every transfer duration on `device`'s link by
    /// `factor`. `factor = 1.0` is inert.
    pub fn with_link_degrade(mut self, device: usize, factor: f64) -> Self {
        assert!(factor >= 1.0, "a link factor below 1 would be a speedup");
        self.link_degrade = Some(LinkDegrade { device, factor });
        self
    }

    /// Builder: freeze `device`'s queue for `stall_s` extra seconds on
    /// each kernel op with probability `rate`.
    pub fn with_stalls(mut self, device: usize, rate: f64, stall_s: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        assert!(stall_s >= 0.0);
        self.stalls = Some(StallPlan { device, rate, stall_s });
        self
    }

    /// Builder: align the last column of generated basis blocks with their
    /// predecessor with probability `rate` per block. `magnitude` in
    /// [0, 1] sets how close to exact rank deficiency the block is pushed.
    pub fn with_basis_perturb(mut self, rate: f64, magnitude: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        assert!((0.0..=1.0).contains(&magnitude));
        self.basis_perturb = Some(BasisPerturb { rate, magnitude });
        self
    }

    /// Builder: pull the host-reduced Gram matrix toward singularity with
    /// probability `rate` per factorization. `scale` in [0, 1] sets how
    /// singular (1.0 = exactly).
    pub fn with_gram_nudge(mut self, rate: f64, scale: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        assert!((0.0..=1.0).contains(&scale));
        self.gram_nudge = Some(GramNudge { rate, scale });
        self
    }

    /// Builder: force the solver to run with step size `s`, ignoring the
    /// configured/planned value — the chaos harness uses this to march the
    /// basis past the static stability caps.
    pub fn with_s_override(mut self, s: usize) -> Self {
        assert!(s >= 1);
        self.s_override = Some(s);
        self
    }

    /// Builder: drop any scheduled device loss — used when re-installing a
    /// plan on the surviving devices after a degradation recovery (the
    /// loss already happened; SDC and transfer faults stay active).
    pub fn without_device_loss(mut self) -> Self {
        self.device_loss = None;
        self
    }

    /// Builder: drop the performance faults (slowdown, link degradation,
    /// stalls) targeting `device` — used when that device has been
    /// declared lost and a rebuilt executor renumbers the survivors (a
    /// fault aimed at the dead device must not land on whichever survivor
    /// inherits its index).
    pub fn without_perf_faults_on(mut self, device: usize) -> Self {
        if matches!(self.slowdown, Some(s) if s.device == device) {
            self.slowdown = None;
        }
        if matches!(self.link_degrade, Some(l) if l.device == device) {
            self.link_degrade = None;
        }
        if matches!(self.stalls, Some(s) if s.device == device) {
            self.stalls = None;
        }
        self
    }

    /// SplitMix64 over the seed and the decision coordinates.
    fn hash(&self, salt: u64, device: usize, index: u64) -> u64 {
        let mut z = self
            .seed
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(salt.wrapping_mul(0xbf58476d1ce4e5b9))
            .wrapping_add((device as u64).wrapping_mul(0x94d049bb133111eb))
            .wrapping_add(index);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn u01(h: u64) -> f64 {
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Does kernel op `op` of class `kind` on `device` get corrupted, and
    /// if so, how?
    pub fn sdc_event(&self, device: usize, op: u64, kind: SdcKind) -> Option<SdcEvent> {
        if self.sdc_rate <= 0.0 || !self.sdc_targets.covers(kind) {
            return None;
        }
        let h = self.hash(kind.salt(), device, op);
        if Self::u01(h) >= self.sdc_rate {
            return None;
        }
        let h2 = self.hash(kind.salt() ^ 0xface, device, op);
        // bits 20..62: low-mantissa flips are harmless noise, high-exponent
        // flips are catastrophic — both realistic SDC outcomes.
        SdcEvent { lane: h, bit: 20 + (h2 % 42) as u32 }.into()
    }

    /// Does attempt `attempt` of transfer message `msg` on `device`'s link
    /// fail?
    pub fn transfer_fails(&self, device: usize, msg: u64, attempt: u32) -> bool {
        if self.transfer_fail_rate <= 0.0 {
            return false;
        }
        let h = self.hash(0x7866_6572 ^ ((attempt as u64) << 40), device, msg);
        Self::u01(h) < self.transfer_fail_rate
    }

    /// Has `device` died by the time it has completed `ops_done` kernel ops?
    pub fn loses_device(&self, device: usize, ops_done: u64) -> bool {
        matches!(self.device_loss, Some(l) if l.device == device && ops_done > l.after_op)
    }

    /// Does allocation number `alloc_index` on `device` fail by injection?
    pub fn fails_alloc(&self, device: usize, alloc_index: u64) -> bool {
        matches!(self.alloc_fault, Some(a) if a.device == device && a.at_alloc == alloc_index)
    }

    /// Compute-duration multiplier for kernel op `op` on `device`
    /// (1.0 = full speed). Pure in `(seed, device, op)`.
    pub fn compute_multiplier(&self, device: usize, op: u64) -> f64 {
        match self.slowdown {
            Some(s) if s.device == device && op > s.after_op => s.factor,
            _ => 1.0,
        }
    }

    /// Transfer-duration multiplier for a message on `device`'s link
    /// (1.0 = healthy link).
    pub fn link_multiplier(&self, device: usize) -> f64 {
        match self.link_degrade {
            Some(l) if l.device == device => l.factor,
            _ => 1.0,
        }
    }

    /// Extra queue-freeze seconds kernel op `op` on `device` suffers
    /// (0.0 = no stall). Pure in `(seed, device, op)`.
    pub fn stall_time(&self, device: usize, op: u64) -> f64 {
        let Some(st) = self.stalls else {
            return 0.0;
        };
        if st.device != device || st.rate <= 0.0 || st.stall_s <= 0.0 {
            return 0.0;
        }
        let h = self.hash(0x5354_414c, device, op);
        if Self::u01(h) < st.rate {
            st.stall_s
        } else {
            0.0
        }
    }

    /// Does basis block number `block` (a per-solve monotone counter) on
    /// `device` get an ill-conditioning perturbation, and how strong?
    /// Returns the alignment weight in (0, 1]. Pure in
    /// `(seed, device, block)`; `None`/zero rate/zero magnitude is inert.
    pub fn basis_perturb_event(&self, device: usize, block: u64) -> Option<f64> {
        let bp = self.basis_perturb?;
        if bp.rate <= 0.0 || bp.magnitude <= 0.0 {
            return None;
        }
        let h = self.hash(0x4241_5349, device, block);
        if Self::u01(h) < bp.rate {
            Some(bp.magnitude)
        } else {
            None
        }
    }

    /// Does host-side Gram factorization number `index` (a per-solve
    /// monotone counter) get nudged toward singularity, and how far?
    /// Returns the blend weight in (0, 1]. Device-independent (the Gram
    /// factorization is a host step); `None`/zero rate/zero scale is inert.
    pub fn gram_nudge_event(&self, index: u64) -> Option<f64> {
        let gn = self.gram_nudge?;
        if gn.rate <= 0.0 || gn.scale <= 0.0 {
            return None;
        }
        let h = self.hash(0x4752_414d, 0, index);
        if Self::u01(h) < gn.rate {
            Some(gn.scale)
        } else {
            None
        }
    }

    /// Forced step size, if this plan overrides the solver's `s`.
    pub fn forced_s(&self) -> Option<usize> {
        self.s_override
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let p = FaultPlan::new(42).with_sdc(0.5, SdcTargets::all()).with_transfer_faults(0.5);
        for op in 0..64 {
            let a = p.sdc_event(1, op, SdcKind::Spmv).map(|e| (e.lane, e.bit));
            let b = p.sdc_event(1, op, SdcKind::Spmv).map(|e| (e.lane, e.bit));
            assert_eq!(a, b);
            assert_eq!(p.transfer_fails(0, op, 0), p.transfer_fails(0, op, 0));
        }
    }

    #[test]
    fn rate_extremes() {
        let off = FaultPlan::new(7);
        let on = FaultPlan::new(7).with_sdc(1.0, SdcTargets::all()).with_transfer_faults(1.0);
        for op in 0..32 {
            assert!(off.sdc_event(0, op, SdcKind::Gemm).is_none());
            assert!(!off.transfer_fails(0, op, 0));
            assert!(on.sdc_event(0, op, SdcKind::Gemm).is_some());
            assert!(on.transfer_fails(0, op, 0));
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let a = FaultPlan::new(1).with_sdc(0.5, SdcTargets::all());
        let b = FaultPlan::new(2).with_sdc(0.5, SdcTargets::all());
        let hits_a: Vec<bool> =
            (0..256).map(|op| a.sdc_event(0, op, SdcKind::Spmv).is_some()).collect();
        let hits_b: Vec<bool> =
            (0..256).map(|op| b.sdc_event(0, op, SdcKind::Spmv).is_some()).collect();
        assert_ne!(hits_a, hits_b);
        let frac = hits_a.iter().filter(|&&h| h).count() as f64 / 256.0;
        assert!((0.3..0.7).contains(&frac), "rate 0.5 drew {frac}");
    }

    #[test]
    fn sdc_flips_exactly_one_bit() {
        let p = FaultPlan::new(3).with_sdc(1.0, SdcTargets::all());
        let e = p.sdc_event(0, 0, SdcKind::Spmv).unwrap();
        let mut data = vec![1.0, 2.0, 3.0, 4.0];
        let before = data.clone();
        e.apply(&mut data);
        let changed: Vec<usize> =
            (0..4).filter(|&i| data[i].to_bits() != before[i].to_bits()).collect();
        assert_eq!(changed.len(), 1);
        let i = changed[0];
        assert_eq!((data[i].to_bits() ^ before[i].to_bits()).count_ones(), 1);
        // sign bit never flips
        assert_eq!(data[i].is_sign_negative(), before[i].is_sign_negative());
    }

    #[test]
    fn device_loss_threshold() {
        let p = FaultPlan::new(0).with_device_loss(2, 10);
        assert!(!p.loses_device(2, 10));
        assert!(p.loses_device(2, 11));
        assert!(!p.loses_device(1, 1000));
    }

    #[test]
    fn error_display_mentions_out_of_memory() {
        let e = GpuSimError::OutOfMemory { device: 0, requested: 100, free: 10 };
        assert!(e.to_string().contains("out of memory"));
    }

    #[test]
    fn slowdown_applies_after_threshold_on_target_only() {
        let p = FaultPlan::new(1).with_slowdown(1, 4.0, 10);
        assert_eq!(p.compute_multiplier(1, 10), 1.0);
        assert_eq!(p.compute_multiplier(1, 11), 4.0);
        assert_eq!(p.compute_multiplier(0, 1000), 1.0);
        assert_eq!(p.compute_multiplier(2, 1000), 1.0);
    }

    #[test]
    fn link_degrade_targets_one_link() {
        let p = FaultPlan::new(1).with_link_degrade(2, 3.0);
        assert_eq!(p.link_multiplier(2), 3.0);
        assert_eq!(p.link_multiplier(0), 1.0);
    }

    #[test]
    fn stalls_are_deterministic_and_rate_faithful() {
        let p = FaultPlan::new(9).with_stalls(0, 0.5, 1e-3);
        let a: Vec<f64> = (0..256).map(|op| p.stall_time(0, op)).collect();
        let b: Vec<f64> = (0..256).map(|op| p.stall_time(0, op)).collect();
        assert_eq!(a, b);
        let frac = a.iter().filter(|&&s| s > 0.0).count() as f64 / 256.0;
        assert!((0.3..0.7).contains(&frac), "rate 0.5 drew {frac}");
        // other devices never stall
        assert!((0..256).all(|op| p.stall_time(1, op) == 0.0));
        // zero rate and unit factors are inert
        let inert = FaultPlan::new(9).with_stalls(0, 0.0, 1.0);
        assert!((0..64).all(|op| inert.stall_time(0, op) == 0.0));
        assert_eq!(FaultPlan::new(9).with_slowdown(0, 1.0, 0).compute_multiplier(0, 5), 1.0);
    }

    #[test]
    fn numerical_faults_are_deterministic_and_rate_faithful() {
        let p = FaultPlan::new(11).with_basis_perturb(0.5, 0.9).with_gram_nudge(0.5, 0.99);
        let a: Vec<Option<f64>> = (0..256).map(|b| p.basis_perturb_event(0, b)).collect();
        let b: Vec<Option<f64>> = (0..256).map(|b| p.basis_perturb_event(0, b)).collect();
        assert_eq!(a, b);
        let frac = a.iter().filter(|e| e.is_some()).count() as f64 / 256.0;
        assert!((0.3..0.7).contains(&frac), "rate 0.5 drew {frac}");
        assert!(a.iter().flatten().all(|&m| m == 0.9));
        let g: Vec<Option<f64>> = (0..256).map(|i| p.gram_nudge_event(i)).collect();
        assert_eq!(g, (0..256).map(|i| p.gram_nudge_event(i)).collect::<Vec<_>>());
        let gfrac = g.iter().filter(|e| e.is_some()).count() as f64 / 256.0;
        assert!((0.3..0.7).contains(&gfrac), "rate 0.5 drew {gfrac}");
        // the two kinds draw independent streams
        let hits_b: Vec<bool> = a.iter().map(|e| e.is_some()).collect();
        let hits_g: Vec<bool> = g.iter().map(|e| e.is_some()).collect();
        assert_ne!(hits_b, hits_g);
    }

    #[test]
    fn numerical_faults_inert_when_unset_or_zero() {
        let off = FaultPlan::new(11);
        assert!((0..64).all(|b| off.basis_perturb_event(0, b).is_none()));
        assert!((0..64).all(|i| off.gram_nudge_event(i).is_none()));
        assert!(off.forced_s().is_none());
        let zero = FaultPlan::new(11).with_basis_perturb(0.0, 1.0).with_gram_nudge(1.0, 0.0);
        assert!((0..64).all(|b| zero.basis_perturb_event(0, b).is_none()));
        assert!((0..64).all(|i| zero.gram_nudge_event(i).is_none()));
        let on = FaultPlan::new(11).with_basis_perturb(1.0, 0.5).with_s_override(16);
        assert!((0..64).all(|b| on.basis_perturb_event(0, b) == Some(0.5)));
        assert_eq!(on.forced_s(), Some(16));
    }

    #[test]
    fn perf_faults_cleared_per_device() {
        let p = FaultPlan::new(3)
            .with_slowdown(1, 2.0, 0)
            .with_link_degrade(1, 2.0)
            .with_stalls(2, 1.0, 1.0);
        let q = p.clone().without_perf_faults_on(1);
        assert_eq!(q.compute_multiplier(1, 5), 1.0);
        assert_eq!(q.link_multiplier(1), 1.0);
        assert!(q.stall_time(2, 0) > 0.0, "faults on other devices survive");
        let r = p.without_perf_faults_on(2);
        assert_eq!(r.compute_multiplier(1, 5), 2.0);
        assert_eq!(r.stall_time(2, 0), 0.0);
    }
}
