#![cfg_attr(test, recursion_limit = "256")] // proptest! bodies in model.rs
//! # ca-gpusim — simulated multi-GPU substrate
//!
//! The paper runs on three NVIDIA M2090 (Fermi) GPUs attached to a 16-core
//! Sandy Bridge host over PCIe gen 2. This crate substitutes that hardware
//! with a *discrete-cost simulation* that keeps everything the paper
//! measures observable:
//!
//! * **real arithmetic** — every kernel computes actual IEEE f64 results on
//!   host threads, in the same order the distributed algorithm prescribes
//!   (per-device partial sums, host reductions, batched-GEMM panel sums),
//!   so numerical phenomena (CholQR breakdown, CGS reorthogonalization,
//!   Newton-basis conditioning) are genuine;
//! * **modeled time** — each kernel and transfer advances simulated clocks
//!   using the calibrated [`model::PerfModel`] (M2090 flops/bandwidth,
//!   PCIe latency/bandwidth, per-kernel-variant efficiency caps fitted to
//!   the paper's Fig. 11 shapes);
//! * **true concurrency** — device phases execute on real threads
//!   ([`MultiGpu::run_map`]) and device clocks advance independently, so
//!   communication-free MPK flops genuinely overlap while transfers create
//!   the only synchronization points;
//! * **streams and events** — each device clock is the tail of an in-order
//!   command queue (a CUDA stream); copies occupy per-link copy engines
//!   and record [`stream::Event`]s other queues can wait on, and the
//!   scheduler resolves every command's start time as
//!   `max(queue_predecessor_finish, waited_events)`. Under
//!   [`stream::Schedule::EventDriven`] global barriers vanish and
//!   end-to-end time emerges from the dependency graph alone (see
//!   [`stream`]).
//!
//! See `DESIGN.md` (repo root) for the substitution argument.
//!
//! ```
//! use ca_gpusim::MultiGpu;
//!
//! let mut mg = MultiGpu::with_defaults(3);
//! // allocate a tall block on each device and reduce per-device dots
//! let ids: Vec<_> = (0..3)
//!     .map(|d| {
//!         let dev = mg.device_mut(d);
//!         let v = dev.alloc_mat(1000, 2).unwrap();
//!         dev.mat_mut(v).set_col(0, &vec![1.0; 1000]);
//!         dev.mat_mut(v).set_col(1, &vec![2.0; 1000]);
//!         v
//!     })
//!     .collect();
//! let parts = mg.run_map(|d, dev| dev.dot_cols(ids[d], 0, 1));
//! mg.to_host(&[8, 8, 8]).unwrap(); // charge the PCIe reduction
//! assert_eq!(parts.iter().sum::<f64>(), 6000.0);
//! assert!(mg.time() > 0.0); // simulated, deterministic
//! ```
//!
//! ## Fault injection
//!
//! [`faults::FaultPlan`] deterministically injects silent data corruption,
//! transient transfer failures, device loss, allocation failure, and
//! fail-*slow* performance faults (sustained compute slowdown, degraded
//! links, intermittent queue stalls), all derived from `(seed, device,
//! op index)` — never wall-clock randomness — so every faulty run replays
//! bit-identically. A plan with all rates zero is indistinguishable from
//! no plan at all. [`MultiGpu::health_report`](multi::MultiGpu) and the
//! [`MultiGpu::watchdog`](multi::MultiGpu) convert the observed-vs-modeled
//! latency drift back into driver-visible health state, and
//! [`trace::export_chrome_trace`] renders recorded command queues as a
//! Perfetto/`chrome://tracing` timeline.

// Numeric kernels index several parallel slices at once; iterator
// rewrites would obscure the stride arithmetic the cost model mirrors.
#![allow(clippy::needless_range_loop)]

pub mod device;
pub mod faults;
pub mod model;
pub mod multi;
pub mod retry;
pub mod stream;
pub mod trace;

pub use device::{Device, MatId, MemMark, SpId, SpSlice, VecId};
pub use faults::{
    AllocFault, BasisPerturb, DeviceLoss, FaultPlan, GpuSimError, GramNudge, LinkDegrade, SdcKind,
    SdcTargets, Slowdown, StallPlan,
};
pub use model::{EffCurve, GemmVariant, GemvVariant, KernelConfig, PerfModel, PARAM_NAMES};
pub use multi::{CommCounters, DeviceHealth, HealthReport, MultiGpu};
pub use retry::RetryPolicy;
pub use stream::{Cmd, CopyEngine, Event, EventTable, Schedule, StreamTrace};
pub use trace::{export_chrome_trace, obs_ingest_traces};
