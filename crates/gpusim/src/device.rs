//! A simulated GPU device: private memory, real arithmetic, modeled time.
//!
//! A [`Device`] owns vectors ([`VecId`]), tall dense matrices ([`MatId`],
//! used for the Krylov basis blocks) and sparse slices ([`SpId`], ELLPACK
//! with *global* column indices plus the global row ids of the slice).
//! Every kernel method performs the actual arithmetic (so numerics are
//! real) and advances the device's private clock by the calibrated
//! [`PerfModel`] cost. Dense containers are `f64`; a sparse slice carries
//! its own [`Precision`] — an f32 slice runs its SpMV genuinely in single
//! precision (operands rounded to f32, f32 accumulation, result widened
//! back to f64) and is charged the f32 kernel cost. Host-side data
//! plumbing (reading results, uploads) is free here; PCIe costs are
//! charged by [`MultiGpu`](crate::multi::MultiGpu)'s transfer methods.

use crate::faults::{FaultPlan, GpuSimError, Result, SdcKind};
use crate::model::{GemmVariant, GemvVariant, PerfModel};
use crate::stream::{Cmd, Event, StreamTrace};
use ca_dense::{blas1, blas3, qr, Mat};
use ca_scalar::Precision;
use ca_sparse::{Csr, Ell, Hyb};
use rayon::prelude::*;
use std::sync::Arc;

/// Handle to a device vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VecId(pub(crate) usize);

/// Handle to a device dense matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatId(pub(crate) usize);

/// Handle to a device sparse slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpId(pub(crate) usize);

/// Allocation watermark of one device, taken with
/// [`Device::mem_checkpoint`] and restored with [`Device::mem_rollback`]
/// when a multi-object build fails partway.
#[derive(Debug, Clone, Copy)]
pub struct MemMark {
    vecs: usize,
    mats: usize,
    slices: usize,
    bytes: usize,
}

/// Sparse storage of a device slice: plain ELLPACK (the paper's GPU
/// format) or hybrid ELL + COO (CUSP-style, robust to hub rows), each at
/// either supported precision. The interface stays `f64`-valued: an f32
/// slice rounds its input vector to f32 per gathered element, accumulates
/// in f32, and widens the finished rows back to f64 — genuine
/// single-precision arithmetic behind a double-precision data plane.
#[derive(Debug, Clone)]
pub enum SpStorage {
    /// ELLPACK: width = longest row, padding priced like real data.
    Ell(Ell),
    /// Hybrid: bounded-width ELL part plus a COO tail.
    Hyb(Hyb),
    /// Single-precision ELLPACK (the mixed-precision MPK operator).
    EllF32(Ell<f32>),
    /// Single-precision hybrid.
    HybF32(Hyb<f32>),
}

impl SpStorage {
    /// Rows in the slice.
    pub fn nrows(&self) -> usize {
        match self {
            SpStorage::Ell(e) => e.nrows(),
            SpStorage::Hyb(h) => h.nrows(),
            SpStorage::EllF32(e) => e.nrows(),
            SpStorage::HybF32(h) => h.nrows(),
        }
    }

    /// Device bytes occupied.
    pub fn bytes(&self) -> usize {
        match self {
            SpStorage::Ell(e) => e.bytes(),
            SpStorage::Hyb(h) => h.bytes(),
            SpStorage::EllF32(e) => e.bytes(),
            SpStorage::HybF32(h) => h.bytes(),
        }
    }

    /// Precision the slice's arithmetic runs at.
    pub fn prec(&self) -> Precision {
        match self {
            SpStorage::Ell(_) | SpStorage::Hyb(_) => Precision::F64,
            SpStorage::EllF32(_) | SpStorage::HybF32(_) => Precision::F32,
        }
    }

    /// `y := A x`. For f32 storage the product is computed entirely in
    /// f32 (input rounded, f32 accumulation) and widened on output.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        match self {
            SpStorage::Ell(e) => e.spmv(x, y),
            SpStorage::Hyb(h) => h.spmv(x, y),
            SpStorage::EllF32(e) => spmv_f32(|xt, yt| e.spmv(xt, yt), x, y),
            SpStorage::HybF32(h) => spmv_f32(|xt, yt| h.spmv(xt, yt), x, y),
        }
    }
}

/// Run a single-precision SpMV kernel against `f64` endpoints: demote the
/// input once, multiply in f32, widen the result. The demotion is the
/// explicit rounding point of the mixed-precision path.
fn spmv_f32(kernel: impl Fn(&[f32], &mut [f32]), x: &[f64], y: &mut [f64]) {
    let xt: Vec<f32> = x.iter().map(|&v| v as f32).collect();
    let mut yt = vec![0.0f32; y.len()];
    kernel(&xt, &mut yt);
    for (yo, &yi) in y.iter_mut().zip(&yt) {
        *yo = yi as f64;
    }
}

/// A sparse slice: rows `rows[i]` (global ids) of some global matrix,
/// stored with global column indices.
#[derive(Debug, Clone)]
pub struct SpSlice {
    /// Sparse storage (ncols = global n).
    pub storage: SpStorage,
    /// Global row ids, one per local row.
    pub rows: Vec<u32>,
}

/// One simulated GPU.
#[derive(Debug)]
pub struct Device {
    id: usize,
    clock: f64,
    model: Arc<PerfModel>,
    vecs: Vec<Vec<f64>>,
    mats: Vec<Mat>,
    slices: Vec<SpSlice>,
    mem_bytes: usize,
    /// Kernel ops completed (fault-plan coordinate; counted always so a
    /// zero-rate plan is bit-identical to no plan).
    ops: u64,
    /// Allocations attempted (fault-plan coordinate).
    allocs: u64,
    /// Installed fault schedule, if any.
    faults: Option<Arc<FaultPlan>>,
    /// Persistent device loss: clock frozen, transfers fail.
    lost: bool,
    /// Silent corruptions injected so far (study bookkeeping).
    sdc_injected: u64,
    /// Optional command-queue trace (off by default).
    stream: StreamTrace,
    /// Observed kernel seconds (includes injected fail-slow perturbation).
    busy_s: f64,
    /// Modeled kernel seconds (what a healthy device would have taken).
    modeled_busy_s: f64,
    /// EWMA of per-command observed/modeled latency (1.0 = healthy).
    ewma_slowdown: f64,
    /// Worst single-command overshoot (observed − modeled seconds) — the
    /// hang detector's evidence.
    max_overshoot_s: f64,
}

/// EWMA smoothing for the per-command latency ratio: small enough to ride
/// out one noisy command, large enough to converge within a few dozen ops.
const EWMA_ALPHA: f64 = 0.125;

impl Device {
    pub(crate) fn new(id: usize, model: Arc<PerfModel>) -> Self {
        Self {
            id,
            clock: 0.0,
            model,
            vecs: Vec::new(),
            mats: Vec::new(),
            slices: Vec::new(),
            mem_bytes: 0,
            ops: 0,
            allocs: 0,
            faults: None,
            lost: false,
            sdc_injected: 0,
            stream: StreamTrace::default(),
            busy_s: 0.0,
            modeled_busy_s: 0.0,
            ewma_slowdown: 1.0,
            max_overshoot_s: 0.0,
        }
    }

    /// Device index (0-based).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Simulated seconds this device has been busy.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    pub(crate) fn set_clock(&mut self, t: f64) {
        if self.lost {
            return; // a dead device's clock stays frozen
        }
        self.clock = t;
    }

    pub(crate) fn advance(&mut self, name: &'static str, dt: f64) {
        debug_assert!(dt >= 0.0);
        if self.lost {
            return;
        }
        self.ops += 1;
        if let Some(p) = &self.faults {
            if p.loses_device(self.id, self.ops) {
                self.lost = true;
                return; // the op that kills the device never completes
            }
        }
        // fail-slow perturbation: a pure function of (seed, device, op).
        // Both branches are gated on a non-neutral draw so a zero-rate
        // plan leaves `actual` bit-identical to `dt`.
        let mut actual = dt;
        if let Some(p) = &self.faults {
            let m = p.compute_multiplier(self.id, self.ops);
            if m != 1.0 {
                actual *= m;
            }
            let stall = p.stall_time(self.id, self.ops);
            if stall > 0.0 {
                actual += stall;
            }
        }
        let start = self.clock;
        self.clock += actual;
        self.busy_s += actual;
        self.modeled_busy_s += dt;
        if actual > dt {
            self.max_overshoot_s = self.max_overshoot_s.max(actual - dt);
        }
        if dt > 0.0 {
            self.ewma_slowdown += EWMA_ALPHA * (actual / dt - self.ewma_slowdown);
        }
        if self.stream.is_enabled() {
            self.stream.push(Cmd::Kernel { name, start, dur: actual, modeled: dt });
        }
    }

    /// Make this queue wait for an event: the next command starts no
    /// earlier than `t` (the `waited_events` term of the start-time rule).
    /// No-op on a lost device — its clock stays frozen.
    pub(crate) fn wait_until(&mut self, t: f64, ev: Event) {
        if self.lost {
            return;
        }
        self.clock = self.clock.max(t);
        if self.stream.is_enabled() {
            self.stream.push(Cmd::WaitEvent { event: ev, until: self.clock });
        }
    }

    pub(crate) fn log_cmd(&mut self, cmd: Cmd) {
        if self.stream.is_enabled() {
            self.stream.push(cmd);
        }
    }

    /// Start recording commands issued to this device's stream.
    pub fn enable_trace(&mut self) {
        self.stream.enable();
    }

    /// Commands recorded since trace enablement.
    pub fn trace(&self) -> &[Cmd] {
        self.stream.cmds()
    }

    /// Drain the recorded command trace.
    pub fn take_trace(&mut self) -> Vec<Cmd> {
        self.stream.take()
    }

    /// Drop buffered trace commands (recording stays on).
    pub fn clear_trace(&mut self) {
        self.stream.clear();
    }

    /// Install (or clear) the fault schedule.
    pub fn set_faults(&mut self, plan: Option<Arc<FaultPlan>>) {
        self.faults = plan;
    }

    /// Has this device suffered persistent loss?
    pub fn is_lost(&self) -> bool {
        self.lost
    }

    /// Declare this device lost (watchdog verdict): the clock freezes and
    /// every subsequent command or transfer is refused, exactly as if the
    /// fault plan had killed it.
    pub(crate) fn mark_lost(&mut self) {
        self.lost = true;
    }

    /// Kernel ops completed so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Observed kernel seconds, including injected fail-slow time.
    pub fn busy_time(&self) -> f64 {
        self.busy_s
    }

    /// Modeled kernel seconds (what a healthy device would have taken).
    pub fn modeled_busy_time(&self) -> f64 {
        self.modeled_busy_s
    }

    /// EWMA of per-command observed/modeled latency. 1.0 on a healthy
    /// device; converges toward the slowdown factor on a degraded one.
    pub fn ewma_slowdown(&self) -> f64 {
        self.ewma_slowdown
    }

    /// Worst single-command overshoot (observed − modeled seconds) seen so
    /// far — what the watchdog compares against its hang timeout.
    pub fn max_overshoot(&self) -> f64 {
        self.max_overshoot_s
    }

    /// Silent corruptions injected into this device's kernel outputs.
    pub fn sdc_injected(&self) -> u64 {
        self.sdc_injected
    }

    /// Corrupt one element of a kernel output if the plan says this op is
    /// hit. `self.ops` is the *current* op's index (advance() bumps after).
    fn maybe_corrupt(&mut self, kind: SdcKind, data: &mut [f64]) {
        if let Some(p) = &self.faults {
            if let Some(e) = p.sdc_event(self.id, self.ops, kind) {
                e.apply(data);
                self.sdc_injected += 1;
            }
        }
    }

    /// [`Device::maybe_corrupt`] for a small dense output matrix.
    fn maybe_corrupt_mat(&mut self, kind: SdcKind, m: &mut Mat) {
        if let Some(p) = &self.faults {
            if let Some(e) = p.sdc_event(self.id, self.ops, kind) {
                let (r, c) = (m.nrows(), m.ncols());
                if r * c > 0 {
                    let idx = (e.lane % (r * c) as u64) as usize;
                    let (i, j) = (idx % r, idx / r);
                    m[(i, j)] = f64::from_bits(m[(i, j)].to_bits() ^ (1u64 << e.bit));
                    self.sdc_injected += 1;
                }
            }
        }
    }

    /// Bytes of device memory currently allocated (the paper's MPK storage
    /// overhead discussion, §IV-A).
    pub fn mem_used(&self) -> usize {
        self.mem_bytes
    }

    /// Bytes still available before the modeled capacity is exhausted.
    pub fn mem_free(&self) -> usize {
        self.model.dev_mem_capacity.saturating_sub(self.mem_bytes)
    }

    fn charge_mem(&mut self, bytes: usize) -> Result<()> {
        let alloc_index = self.allocs;
        self.allocs += 1;
        if self.lost {
            return Err(GpuSimError::DeviceLost { device: self.id });
        }
        let injected = self.faults.as_ref().is_some_and(|p| p.fails_alloc(self.id, alloc_index));
        if injected || self.mem_bytes + bytes > self.model.dev_mem_capacity {
            return Err(GpuSimError::OutOfMemory {
                device: self.id,
                requested: bytes,
                free: self.mem_free(),
            });
        }
        self.mem_bytes += bytes;
        Ok(())
    }

    // ---------- allocation (free: matches the paper excluding setup) ----------

    /// Allocate a zeroed device vector.
    ///
    /// # Errors
    /// [`GpuSimError::OutOfMemory`] when the modeled device memory capacity
    /// would be exceeded (or an allocation fault is injected).
    pub fn alloc_vec(&mut self, len: usize) -> Result<VecId> {
        self.charge_mem(len * 8)?;
        self.vecs.push(vec![0.0; len]);
        Ok(VecId(self.vecs.len() - 1))
    }

    /// Allocate a zeroed `rows x cols` device matrix.
    ///
    /// # Errors
    /// [`GpuSimError::OutOfMemory`] when the modeled device memory capacity
    /// would be exceeded (or an allocation fault is injected).
    pub fn alloc_mat(&mut self, rows: usize, cols: usize) -> Result<MatId> {
        self.charge_mem(rows * cols * 8)?;
        self.mats.push(Mat::zeros(rows, cols));
        Ok(MatId(self.mats.len() - 1))
    }

    /// Load an ELLPACK sparse slice into device memory.
    ///
    /// # Errors
    /// [`GpuSimError::OutOfMemory`] when the modeled device memory capacity
    /// would be exceeded (or an allocation fault is injected).
    pub fn load_slice(&mut self, ell: Ell, rows: Vec<u32>) -> Result<SpId> {
        self.load_slice_storage(SpStorage::Ell(ell), rows)
    }

    /// Load a sparse slice in any storage format.
    ///
    /// # Errors
    /// [`GpuSimError::OutOfMemory`] when the modeled device memory capacity
    /// would be exceeded (or an allocation fault is injected).
    pub fn load_slice_storage(&mut self, storage: SpStorage, rows: Vec<u32>) -> Result<SpId> {
        assert_eq!(storage.nrows(), rows.len());
        self.charge_mem(storage.bytes() + rows.len() * 4)?;
        self.slices.push(SpSlice { storage, rows });
        Ok(SpId(self.slices.len() - 1))
    }

    // ---------- deallocation (multi-tenant residency management) ----------
    //
    // One-shot solves never free: the executor is dropped wholesale at the
    // end, matching the paper's setup-excluded methodology. A *service*
    // that keeps operators resident across jobs needs to return memory
    // when a cold matrix is evicted, without invalidating the ids other
    // resident systems hold — so frees tombstone the slot in place (ids
    // are indices and must stay stable) and only the byte accounting and
    // the backing host storage are released. Double-frees are idempotent:
    // an already-empty slot releases zero bytes.

    /// Free a device vector: release its bytes and tombstone the slot.
    pub fn free_vec(&mut self, v: VecId) {
        let bytes = self.vecs[v.0].len() * 8;
        self.mem_bytes = self.mem_bytes.saturating_sub(bytes);
        self.vecs[v.0] = Vec::new();
    }

    /// Free a device matrix: release its bytes and tombstone the slot.
    pub fn free_mat(&mut self, m: MatId) {
        let mat = &self.mats[m.0];
        let bytes = mat.nrows() * mat.ncols() * 8;
        self.mem_bytes = self.mem_bytes.saturating_sub(bytes);
        self.mats[m.0] = Mat::zeros(0, 0);
    }

    /// Free a sparse slice: release its bytes and tombstone the slot.
    pub fn free_slice(&mut self, s: SpId) {
        let sl = &self.slices[s.0];
        let bytes = sl.storage.bytes() + sl.rows.len() * 4;
        self.mem_bytes = self.mem_bytes.saturating_sub(bytes);
        self.slices[s.0] = SpSlice {
            storage: SpStorage::Ell(Ell::from_csr(&Csr::from_raw(0, 0, vec![0], vec![], vec![]))),
            rows: Vec::new(),
        };
    }

    /// Snapshot the allocation state before a fallible multi-object build
    /// (e.g. loading a new operator under memory pressure). If the build
    /// fails partway, [`Device::mem_rollback`] discards everything
    /// allocated since — otherwise the half-built object's charges would
    /// leak, since its ids never escaped to be freed.
    pub fn mem_checkpoint(&self) -> MemMark {
        MemMark {
            vecs: self.vecs.len(),
            mats: self.mats.len(),
            slices: self.slices.len(),
            bytes: self.mem_bytes,
        }
    }

    /// Roll allocations back to `mark`. Only valid when nothing allocated
    /// *before* the mark was freed in between (the service's
    /// evict-then-build ordering guarantees this), and when no id handed
    /// out after the mark survives the rollback.
    pub fn mem_rollback(&mut self, mark: &MemMark) {
        debug_assert!(self.vecs.len() >= mark.vecs);
        debug_assert!(self.mats.len() >= mark.mats);
        debug_assert!(self.slices.len() >= mark.slices);
        self.vecs.truncate(mark.vecs);
        self.mats.truncate(mark.mats);
        self.slices.truncate(mark.slices);
        self.mem_bytes = mark.bytes;
    }

    fn spmv_cost(&self, s: SpId) -> f64 {
        match &self.slices[s.0].storage {
            SpStorage::Ell(e) => self.model.spmv_time(e.padded_nnz(), e.nrows()),
            SpStorage::Hyb(h) => {
                self.model.spmv_hyb_time(h.width() * h.nrows(), h.spilled(), h.nrows())
            }
            SpStorage::EllF32(e) => self.model.spmv_time_f32(e.padded_nnz(), e.nrows()),
            SpStorage::HybF32(h) => {
                self.model.spmv_hyb_time_f32(h.width() * h.nrows(), h.spilled(), h.nrows())
            }
        }
    }

    /// Per-word BLAS-1 streaming cost at the precision of slice `s` — the
    /// fused expand/shift add-on of the MPK kernels moves data at the
    /// slice's width.
    fn blas1_cost_at(&self, prec: Precision, words: usize) -> f64 {
        match prec {
            Precision::F64 => self.model.blas1_time(words),
            Precision::F32 => self.model.blas1_time_f32(words),
        }
    }

    // ---------- host-side inspection (free) ----------

    /// Read a device vector (host-side debugging/assembly; no cost — pair
    /// with a `MultiGpu` transfer charge when modeling a real download).
    pub fn vec(&self, v: VecId) -> &[f64] {
        &self.vecs[v.0]
    }

    /// Mutable host-side access to a device vector.
    pub fn vec_mut(&mut self, v: VecId) -> &mut Vec<f64> {
        &mut self.vecs[v.0]
    }

    /// Read a device matrix.
    pub fn mat(&self, m: MatId) -> &Mat {
        &self.mats[m.0]
    }

    /// Mutable host-side access to a device matrix.
    pub fn mat_mut(&mut self, m: MatId) -> &mut Mat {
        &mut self.mats[m.0]
    }

    /// Read a sparse slice.
    pub fn slice(&self, s: SpId) -> &SpSlice {
        &self.slices[s.0]
    }

    // ---------- BLAS-1 kernels ----------
    //
    // Every kernel entry point is a command issued to this device's
    // stream: it performs the real arithmetic immediately (issue order =
    // program order) and advances the queue tail (`clock`) by the modeled
    // cost. A lost device accepts no commands — the same liveness rule
    // transfers enforce. Transfers fail typed; kernels are fire-and-forget
    // launches, so they return neutral values without computing or
    // mutating device state, and the first transfer that touches the
    // device surfaces the loss as `GpuSimError::DeviceLost`.

    /// `V[:, dst] += alpha * V[:, src]`.
    pub fn axpy_cols(&mut self, v: MatId, alpha: f64, src: usize, dst: usize) {
        if self.lost {
            return;
        }
        let rows = self.mats[v.0].nrows();
        let (s, d) = if src < dst {
            let (a, b) = self.mats[v.0].two_cols_mut(src, dst);
            (a, b)
        } else {
            let (a, b) = self.mats[v.0].two_cols_mut(dst, src);
            (b, a)
        };
        blas1::axpy(alpha, s, d);
        self.advance("axpy", self.model.blas1_time(3 * rows));
    }

    /// `V[:, col] *= alpha`.
    pub fn scal_col(&mut self, v: MatId, col: usize, alpha: f64) {
        if self.lost {
            return;
        }
        blas1::scal(alpha, self.mats[v.0].col_mut(col));
        let rows = self.mats[v.0].nrows();
        self.advance("scal", self.model.blas1_time(2 * rows));
    }

    /// Local dot product `V[:, a] . V[:, b]` (the MGS building block).
    pub fn dot_cols(&mut self, v: MatId, a: usize, b: usize) -> f64 {
        if self.lost {
            return 0.0;
        }
        let m = &self.mats[v.0];
        let r = blas1::dot(m.col(a), m.col(b));
        let rows = m.nrows();
        let mut out = [r];
        self.maybe_corrupt(SdcKind::Dot, &mut out);
        self.advance("dot", self.model.blas1_time(2 * rows));
        out[0]
    }

    /// Squared norm of `V[:, col]` (same cost as a dot).
    pub fn norm2_sq_col(&mut self, v: MatId, col: usize) -> f64 {
        self.dot_cols(v, col, col)
    }

    /// Copy `V[:, src]` to `V[:, dst]`.
    pub fn copy_col(&mut self, v: MatId, src: usize, dst: usize) {
        if self.lost {
            return;
        }
        let data = self.mats[v.0].col_to_vec(src);
        self.mats[v.0].set_col(dst, &data);
        let rows = self.mats[v.0].nrows();
        self.advance("copy_col", self.model.blas1_time(2 * rows));
    }

    // ---------- ABFT detector kernels ----------
    //
    // Checksum reductions used by the fault-tolerance layer. They are real
    // kernels (they advance the clock, so detection overhead is priced) but
    // they are never SDC-injection targets: a corrupted detector would turn
    // every experiment into a study of the detector, not the solver.

    /// `(sum V[:, col], sum |V[:, col]|)` — the `1^T v` checksum plus the
    /// magnitude scale its verification tolerance is relative to.
    pub fn sum_col_abs(&mut self, v: MatId, col: usize) -> [f64; 2] {
        if self.lost {
            return [0.0; 2];
        }
        let c = self.mats[v.0].col(col);
        let mut s = 0.0;
        let mut a = 0.0;
        for &x in c {
            s += x;
            a += x.abs();
        }
        self.advance("abft_colsum", self.model.blas1_time(c.len()));
        [s, a]
    }

    /// `(z[..rows] . V[:, col], sum |z_i * V[i, col]|)` — dot of a
    /// device-resident checksum vector against a basis column.
    pub fn dot_vec_col_abs(&mut self, z: VecId, v: MatId, col: usize) -> [f64; 2] {
        if self.lost {
            return [0.0; 2];
        }
        let c = self.mats[v.0].col(col);
        let zv = &self.vecs[z.0];
        assert!(zv.len() >= c.len(), "checksum vector shorter than column");
        let mut s = 0.0;
        let mut a = 0.0;
        for (&x, &y) in zv.iter().zip(c) {
            s += x * y;
            a += (x * y).abs();
        }
        self.advance("abft_dot", self.model.blas1_time(2 * c.len()));
        [s, a]
    }

    /// `((V_a 1)^T (V_b 1), sum |(V_a 1)_i (V_b 1)_i|)` over the column
    /// ranges `a` and `b` — the scalar checksum `1^T (V_a^T V_b) 1` of a
    /// Gram/projection reduction, computed independently of the GEMM it
    /// verifies.
    pub fn block_sum_dot(&mut self, v: MatId, a: (usize, usize), b: (usize, usize)) -> [f64; 2] {
        if self.lost {
            return [0.0; 2];
        }
        let m = &self.mats[v.0];
        let rows = m.nrows();
        let mut dot = 0.0;
        let mut abs = 0.0;
        for i in 0..rows {
            let mut pa = 0.0;
            for j in a.0..a.1 {
                pa += m.col(j)[i];
            }
            let mut pb = 0.0;
            for j in b.0..b.1 {
                pb += m.col(j)[i];
            }
            dot += pa * pb;
            abs += (pa * pb).abs();
        }
        self.advance("abft_block_dot", self.model.blas1_time(rows * ((a.1 - a.0) + (b.1 - b.0))));
        [dot, abs]
    }

    // ---------- BLAS-2 kernels ----------

    /// `r := V[:, j0..j1]^T V[:, x]` — CGS's projection GEMV.
    pub fn gemv_t_cols(
        &mut self,
        v: MatId,
        j0: usize,
        j1: usize,
        x: usize,
        variant: GemvVariant,
    ) -> Vec<f64> {
        if self.lost {
            return vec![0.0; j1 - j0];
        }
        let m = &self.mats[v.0];
        let xcol = m.col(x);
        let mut r = vec![0.0; j1 - j0];
        for (k, j) in (j0..j1).enumerate() {
            r[k] = blas1::dot(m.col(j), xcol);
        }
        self.advance("gemv_t", self.model.gemv_t_time(variant, m.nrows(), j1 - j0));
        r
    }

    /// `V[:, dst] -= V[:, j0..j1] * coeffs` — the Gram-Schmidt update GEMV.
    pub fn gemv_n_update(&mut self, v: MatId, j0: usize, j1: usize, coeffs: &[f64], dst: usize) {
        if self.lost {
            return;
        }
        assert_eq!(coeffs.len(), j1 - j0);
        let m = &mut self.mats[v.0];
        let rows = m.nrows();
        for (k, j) in (j0..j1).enumerate() {
            let c = coeffs[k];
            if c != 0.0 {
                let (s, d) = if j < dst {
                    m.two_cols_mut(j, dst)
                } else {
                    let (a, b) = m.two_cols_mut(dst, j);
                    (b, a)
                };
                blas1::axpy(-c, s, d);
            }
        }
        // modeled as one fused GEMV-like streaming pass
        self.advance("gemv_n", self.model.gemv_t_time(GemvVariant::MagmaTallSkinny, rows, j1 - j0));
    }

    /// Rank-1 update `V[:, c0..c1] -= V[:, src] * coeffs^T` — MGS-style
    /// block orthogonalization against a single previous vector, charged
    /// like one streaming GEMV pass.
    pub fn rank1_update(&mut self, v: MatId, src: usize, c0: usize, c1: usize, coeffs: &[f64]) {
        if self.lost {
            return;
        }
        assert_eq!(coeffs.len(), c1 - c0);
        let m = &mut self.mats[v.0];
        let rows = m.nrows();
        for (k, j) in (c0..c1).enumerate() {
            let c = coeffs[k];
            if c != 0.0 && j != src {
                let (s, d) = if src < j {
                    m.two_cols_mut(src, j)
                } else {
                    let (a, b) = m.two_cols_mut(j, src);
                    (b, a)
                };
                blas1::axpy(-c, s, d);
            }
        }
        self.advance(
            "rank1_update",
            self.model.gemv_t_time(GemvVariant::MagmaTallSkinny, rows, c1 - c0),
        );
    }

    // ---------- BLAS-3 kernels ----------

    /// Gram matrix `B := V[:, j0..j1]^T V[:, j0..j1]` (CholQR/SVQR step 1).
    /// The batched variant computes panel-partial sums in the batched
    /// order — numerically distinct from the flat order, as on the GPU.
    pub fn syrk_cols(&mut self, v: MatId, j0: usize, j1: usize, variant: GemmVariant) -> Mat {
        if self.lost {
            return Mat::zeros(j1 - j0, j1 - j0);
        }
        let k = j1 - j0;
        let m = &self.mats[v.0];
        let rows = m.nrows();
        let mut b = Mat::zeros(k, k);
        // parallel over output columns (disjoint writes, deterministic
        // inner panel order => bitwise-stable results)
        let cols: Vec<Vec<f64>> = (0..k)
            .into_par_iter()
            .map(|jj| {
                let cj_full = m.col(j0 + jj);
                let mut out = vec![0.0f64; jj + 1];
                match variant.panel_rows() {
                    None => {
                        for (ii, o) in out.iter_mut().enumerate() {
                            *o = blas1::dot(m.col(j0 + ii), cj_full);
                        }
                    }
                    Some(h) => {
                        let nb = rows.div_ceil(h).max(1);
                        for p in 0..nb {
                            let r0 = p * h;
                            let r1 = (r0 + h).min(rows);
                            let cj = &cj_full[r0..r1];
                            for (ii, o) in out.iter_mut().enumerate() {
                                *o += blas1::dot(&m.col(j0 + ii)[r0..r1], cj);
                            }
                        }
                    }
                }
                out
            })
            .collect();
        for (jj, col) in cols.iter().enumerate() {
            for (ii, &v) in col.iter().enumerate() {
                b[(ii, jj)] = v;
                b[(jj, ii)] = v;
            }
        }
        self.maybe_corrupt_mat(SdcKind::Gemm, &mut b);
        self.advance("syrk", self.model.gemm_tn_time(variant, rows, k, k));
        b
    }

    /// Gram matrix accumulated in **single precision** — the
    /// mixed-precision CholQR variant of \[23\]: entries are rounded to f32
    /// and the partial sums accumulate in f32, so the result carries
    /// genuine single-precision rounding. About half the cost of the f64
    /// kernel on Fermi-class hardware.
    pub fn syrk_cols_f32(&mut self, v: MatId, j0: usize, j1: usize, variant: GemmVariant) -> Mat {
        if self.lost {
            return Mat::zeros(j1 - j0, j1 - j0);
        }
        let k = j1 - j0;
        let m = &self.mats[v.0];
        let rows = m.nrows();
        let mut b = Mat::zeros(k, k);
        let h = variant.panel_rows().unwrap_or(rows.max(1));
        let nb = rows.div_ceil(h).max(1);
        for p in 0..nb {
            let r0 = p * h;
            let r1 = (r0 + h).min(rows);
            for jj in 0..k {
                let cj = &m.col(j0 + jj)[r0..r1];
                for ii in 0..=jj {
                    let ci = &m.col(j0 + ii)[r0..r1];
                    let mut acc = 0.0f32;
                    for (x, y) in ci.iter().zip(cj) {
                        acc += (*x as f32) * (*y as f32);
                    }
                    b[(ii, jj)] += acc as f64; // panel sums reduced in f64
                }
            }
        }
        for jj in 0..k {
            for ii in 0..jj {
                b[(jj, ii)] = b[(ii, jj)];
            }
        }
        self.maybe_corrupt_mat(SdcKind::Gemm, &mut b);
        self.advance("syrk_f32", self.model.gemm_tn_time_f32(variant, rows, k, k));
        b
    }

    /// `C := V[:, a0..a1]^T V[:, b0..b1]` — BOrth's block projection.
    pub fn gemm_tn_cols(
        &mut self,
        v: MatId,
        (a0, a1): (usize, usize),
        (b0, b1): (usize, usize),
        variant: GemmVariant,
    ) -> Mat {
        if self.lost {
            return Mat::zeros(a1 - a0, b1 - b0);
        }
        let (ka, kb) = (a1 - a0, b1 - b0);
        let m = &self.mats[v.0];
        let rows = m.nrows();
        let mut c = Mat::zeros(ka, kb);
        let cols: Vec<Vec<f64>> = (0..kb)
            .into_par_iter()
            .map(|jb| {
                let cb_full = m.col(b0 + jb);
                let mut out = vec![0.0f64; ka];
                match variant.panel_rows() {
                    None => {
                        for (ja, o) in out.iter_mut().enumerate() {
                            *o = blas1::dot(m.col(a0 + ja), cb_full);
                        }
                    }
                    Some(h) => {
                        let nb = rows.div_ceil(h).max(1);
                        for p in 0..nb {
                            let r0 = p * h;
                            let r1 = (r0 + h).min(rows);
                            let cb = &cb_full[r0..r1];
                            for (ja, o) in out.iter_mut().enumerate() {
                                *o += blas1::dot(&m.col(a0 + ja)[r0..r1], cb);
                            }
                        }
                    }
                }
                out
            })
            .collect();
        for (jb, col) in cols.iter().enumerate() {
            for (ja, &v) in col.iter().enumerate() {
                c[(ja, jb)] = v;
            }
        }
        self.maybe_corrupt_mat(SdcKind::Gemm, &mut c);
        self.advance("gemm_tn", self.model.gemm_tn_time(variant, rows, ka, kb));
        c
    }

    /// `V[:, b0..b1] -= V[:, a0..a1] * C` — BOrth's block update.
    pub fn gemm_nn_update(
        &mut self,
        v: MatId,
        (a0, a1): (usize, usize),
        (b0, b1): (usize, usize),
        c: &Mat,
        variant: GemmVariant,
    ) {
        if self.lost {
            return;
        }
        assert_eq!(c.nrows(), a1 - a0);
        assert_eq!(c.ncols(), b1 - b0);
        let m = &mut self.mats[v.0];
        let rows = m.nrows();
        for jb in 0..(b1 - b0) {
            for ja in 0..(a1 - a0) {
                let coef = c[(ja, jb)];
                if coef != 0.0 {
                    let (src, dst) = if a0 + ja < b0 + jb {
                        m.two_cols_mut(a0 + ja, b0 + jb)
                    } else {
                        let (x, y) = m.two_cols_mut(b0 + jb, a0 + ja);
                        (y, x)
                    };
                    blas1::axpy(-coef, src, dst);
                }
            }
        }
        self.advance("gemm_nn", self.model.gemm_nn_time(variant, rows, a1 - a0, b1 - b0));
    }

    /// `V[:, j0..j1] := V[:, j0..j1] R^{-1}` (CholQR/SVQR step 3, DTRSM).
    pub fn trsm_cols(&mut self, v: MatId, j0: usize, j1: usize, r: &Mat) -> ca_dense::Result<()> {
        if self.lost {
            return Ok(());
        }
        let k = j1 - j0;
        assert_eq!(r.ncols(), k);
        let m = &mut self.mats[v.0];
        let rows = m.nrows();
        // column-oriented forward sweep, same as blas3::trsm_right_upper
        for j in 0..k {
            for l in 0..j {
                let rlj = r[(l, j)];
                if rlj != 0.0 {
                    let (src, dst) = m.two_cols_mut(j0 + l, j0 + j);
                    blas1::axpy(-rlj, src, dst);
                }
            }
            let d = r[(j, j)];
            if d == 0.0 {
                return Err(ca_dense::DenseError::SingularTriangular { index: j });
            }
            blas1::scal(1.0 / d, m.col_mut(j0 + j));
        }
        self.advance("trsm", self.model.trsm_time(rows, k));
        Ok(())
    }

    /// `V[:, j0..j1] := V[:, j0..j1] * Q` with small `k x k` `Q` (CAQR's
    /// final local update). Charged like an NN gemm.
    pub fn gemm_right_small(&mut self, v: MatId, j0: usize, j1: usize, q: &Mat) {
        if self.lost {
            return;
        }
        let k = j1 - j0;
        assert_eq!(q.nrows(), k);
        assert_eq!(q.ncols(), k);
        let m = &mut self.mats[v.0];
        let rows = m.nrows();
        let block = m.cols_copy(j0, j1);
        let mut out = Mat::zeros(rows, k);
        blas3::gemm_nn(1.0, &block, q, 0.0, &mut out);
        for j in 0..k {
            m.set_col(j0 + j, out.col(j));
        }
        self.advance(
            "gemm_q_small",
            self.model.gemm_nn_time(GemmVariant::Batched { h: 384 }, rows, k, k),
        );
    }

    /// First half of the split CAQR update used by the async-prefetch
    /// path: compute only the *last* output column of `V[:, j0..j1] * Q`,
    /// write it in place, and return the overwritten original column so
    /// [`Device::gemm_right_small_rest`] can reconstruct the input block.
    ///
    /// One output column of the product is a tall-skinny mat-vec
    /// (`V_block * q_last`), so it is charged as one; `gemm_nn` computes
    /// every output column independently in the same accumulation order,
    /// so splitting the update is bitwise-invisible to the numerics.
    pub fn gemm_right_small_last(&mut self, v: MatId, j0: usize, j1: usize, q: &Mat) -> Vec<f64> {
        if self.lost {
            return Vec::new();
        }
        let k = j1 - j0;
        assert_eq!(q.nrows(), k);
        assert_eq!(q.ncols(), k);
        let m = &mut self.mats[v.0];
        let rows = m.nrows();
        let block = m.cols_copy(j0, j1);
        let qlast = q.cols_copy(k - 1, k);
        let mut out = Mat::zeros(rows, 1);
        blas3::gemm_nn(1.0, &block, &qlast, 0.0, &mut out);
        let orig = m.col(j0 + k - 1).to_vec();
        m.set_col(j0 + k - 1, out.col(0));
        self.advance("gemm_q_last", self.model.gemv_t_time(GemvVariant::MagmaTallSkinny, rows, k));
        orig
    }

    /// Second half of the split CAQR update: the remaining `k - 1` output
    /// columns of `V[:, j0..j1] * Q`, reading the original last column
    /// from `last` (its slot already holds the new value written by
    /// [`Device::gemm_right_small_last`]).
    pub fn gemm_right_small_rest(&mut self, v: MatId, j0: usize, j1: usize, q: &Mat, last: &[f64]) {
        if self.lost {
            return;
        }
        let k = j1 - j0;
        assert_eq!(q.nrows(), k);
        assert_eq!(q.ncols(), k);
        if k == 1 {
            return;
        }
        let m = &mut self.mats[v.0];
        let rows = m.nrows();
        let mut block = m.cols_copy(j0, j1);
        block.set_col(k - 1, last);
        let qrest = q.cols_copy(0, k - 1);
        let mut out = Mat::zeros(rows, k - 1);
        blas3::gemm_nn(1.0, &block, &qrest, 0.0, &mut out);
        for j in 0..k - 1 {
            m.set_col(j0 + j, out.col(j));
        }
        self.advance(
            "gemm_q_rest",
            self.model.gemm_nn_time(GemmVariant::Batched { h: 384 }, rows, k, k - 1),
        );
    }

    /// Local Householder QR of `V[:, j0..j1]`: Q replaces the columns, R is
    /// returned (CAQR's per-device factorization; BLAS-1/2 cost).
    pub fn local_qr_cols(&mut self, v: MatId, j0: usize, j1: usize) -> Mat {
        if self.lost {
            return Mat::zeros(j1 - j0, j1 - j0);
        }
        let k = j1 - j0;
        let m = &mut self.mats[v.0];
        let rows = m.nrows();
        let block = m.cols_copy(j0, j1);
        let f = qr::householder_qr(&block);
        for j in 0..k {
            m.set_col(j0 + j, f.q.col(j));
        }
        self.advance("geqr2", self.model.geqr2_time(rows, k));
        f.r
    }

    /// Tree (batched-panel) local TSQR of `V[:, j0..j1]` — the paper's
    /// footnote-6 "batched QRs on a GPU": factor `h`-row panels
    /// independently (one batched launch in the model), QR the stacked
    /// panel R's, and apply the small Q back per panel. Q replaces the
    /// columns; R is returned. Numerically a genuine TSQR binary tree of
    /// depth 2, so the result differs from [`Device::local_qr_cols`] at
    /// the rounding level only.
    pub fn local_qr_tree_cols(&mut self, v: MatId, j0: usize, j1: usize, h: usize) -> Mat {
        if self.lost {
            return Mat::zeros(j1 - j0, j1 - j0);
        }
        let k = j1 - j0;
        let m = &mut self.mats[v.0];
        let rows = m.nrows();
        let h = h.max(k).max(1);
        let nb = rows.div_ceil(h).max(1);
        let block = m.cols_copy(j0, j1);

        // leaf panels
        let mut panel_qs: Vec<Mat> = Vec::with_capacity(nb);
        let mut stacked = Mat::zeros(nb * k, k);
        for p in 0..nb {
            let r0 = p * h;
            let r1 = (r0 + h).min(rows);
            let panel = Mat::from_fn(r1 - r0, k, |i, j| block[(r0 + i, j)]);
            let f = qr::householder_qr(&panel);
            for j in 0..k {
                for i in 0..k.min(f.r.nrows()) {
                    stacked[(p * k + i, j)] = f.r[(i, j)];
                }
            }
            panel_qs.push(f.q);
        }
        // root
        let froot = qr::householder_qr(&stacked);
        // apply: Q panel_p := Q_p * Qroot[p*k..(p+1)*k, :]
        for (p, qp) in panel_qs.iter().enumerate() {
            let qroot_p = Mat::from_fn(k.min(qp.ncols()), k, |i, j| froot.q[(p * k + i, j)]);
            let mut out = Mat::zeros(qp.nrows(), k);
            blas3::gemm_nn(1.0, qp, &qroot_p, 0.0, &mut out);
            let r0 = p * h;
            for j in 0..k {
                for i in 0..out.nrows() {
                    m[(r0 + i, j0 + j)] = out[(i, j)];
                }
            }
        }
        self.advance("geqr2_tree", self.model.geqr2_batched_time(rows, k, h));
        froot.r
    }

    // ---------- sparse kernels ----------

    /// `V[:, col] := A_slice * x` where the slice's rows coincide 1:1 with
    /// the matrix rows (the local diagonal block of SpMV/MPK).
    pub fn spmv_to_mat_col(&mut self, s: SpId, x: VecId, v: MatId, col: usize) {
        if self.lost {
            return;
        }
        let mut y = {
            let sl = &self.slices[s.0];
            let mut y = vec![0.0; sl.storage.nrows()];
            sl.storage.spmv(&self.vecs[x.0], &mut y);
            y
        };
        self.maybe_corrupt(SdcKind::Spmv, &mut y);
        assert_eq!(y.len(), self.mats[v.0].nrows());
        self.mats[v.0].set_col(col, &y);
        self.advance("spmv", self.spmv_cost(s));
    }

    /// `z[rows[i]] := (A_slice * x)_i` — MPK's compute-then-expand step for
    /// one slice (local block or one boundary level).
    pub fn spmv_scatter(&mut self, s: SpId, x: VecId, z: VecId) {
        if self.lost {
            return;
        }
        let (mut y, rows_v, prec): (Vec<f64>, Vec<u32>, Precision) = {
            let sl = &self.slices[s.0];
            let mut y = vec![0.0; sl.storage.nrows()];
            sl.storage.spmv(&self.vecs[x.0], &mut y);
            (y, sl.rows.clone(), sl.storage.prec())
        };
        self.maybe_corrupt(SdcKind::Spmv, &mut y);
        let zv = &mut self.vecs[z.0];
        for (i, &r) in rows_v.iter().enumerate() {
            zv[r as usize] = y[i];
        }
        self.advance(
            "spmv",
            self.spmv_cost(s) + self.blas1_cost_at(prec, 2 * rows_v.len()) - self.model.launch_s, // fused expand
        );
    }

    /// Fused basis-recurrence MPK step for one slice:
    /// `z_next[r] := scale * ((A_slice * z_cur)_i - re * z_cur[r]) + im2 * z_next[r]`
    /// for each slice row `r = rows[i]`.
    ///
    /// With `re = im2 = 0, scale = 1` this is the monomial step; a real
    /// Newton shift `theta` uses `re = theta`; the second step of a
    /// complex-conjugate shift pair passes `im2 = b^2` (the
    /// real-arithmetic rearrangement of §IV-A / \[4, §7.3.2\]), reading the
    /// two-steps-ago vector still resident in the `z_next` double buffer;
    /// the Chebyshev recurrence uses `scale = 2/delta, im2 = -1`.
    pub fn spmv_shift_scatter(
        &mut self,
        s: SpId,
        z_cur: VecId,
        z_next: VecId,
        re: f64,
        im2: f64,
        scale: f64,
    ) {
        if self.lost {
            return;
        }
        assert_ne!(z_cur.0, z_next.0, "MPK needs distinct double buffers");
        let (mut y, rows_v, prec): (Vec<f64>, Vec<u32>, Precision) = {
            let sl = &self.slices[s.0];
            let mut y = vec![0.0; sl.storage.nrows()];
            sl.storage.spmv(&self.vecs[z_cur.0], &mut y);
            (y, sl.rows.clone(), sl.storage.prec())
        };
        self.maybe_corrupt(SdcKind::Spmv, &mut y);
        // borrow discipline: read z_cur values before mutating z_next.
        // On an f32 slice the fused shift/recurrence arithmetic also runs
        // in f32 — the recurrence is part of the same kernel as the SpMV.
        let shifted: Vec<f64> = if re != 0.0 || scale != 1.0 {
            let zc = &self.vecs[z_cur.0];
            match prec {
                Precision::F64 => rows_v
                    .iter()
                    .zip(&y)
                    .map(|(&r, &yi)| scale * (yi - re * zc[r as usize]))
                    .collect(),
                Precision::F32 => rows_v
                    .iter()
                    .zip(&y)
                    .map(|(&r, &yi)| {
                        (scale as f32 * (yi as f32 - re as f32 * zc[r as usize] as f32)) as f64
                    })
                    .collect(),
            }
        } else {
            y
        };
        let zn = &mut self.vecs[z_next.0];
        if im2 != 0.0 {
            match prec {
                Precision::F64 => {
                    for (&r, &v) in rows_v.iter().zip(&shifted) {
                        let old = zn[r as usize];
                        zn[r as usize] = v + im2 * old;
                    }
                }
                Precision::F32 => {
                    for (&r, &v) in rows_v.iter().zip(&shifted) {
                        let old = zn[r as usize];
                        zn[r as usize] = (v as f32 + im2 as f32 * old as f32) as f64;
                    }
                }
            }
        } else {
            for (&r, &v) in rows_v.iter().zip(&shifted) {
                zn[r as usize] = v;
            }
        }
        self.advance(
            "mpk_step",
            self.spmv_cost(s) + self.blas1_cost_at(prec, 2 * rows_v.len()) - self.model.launch_s, // fused shift+expand
        );
    }

    /// Copy `z[rows[i]]` into `V[i, col]` — MPK's "copy the local part of y
    /// into v" step.
    pub fn gather_vec_to_col(&mut self, z: VecId, rows: &[u32], v: MatId, col: usize) {
        if self.lost {
            return;
        }
        let vals: Vec<f64> = rows.iter().map(|&r| self.vecs[z.0][r as usize]).collect();
        assert_eq!(vals.len(), self.mats[v.0].nrows());
        self.mats[v.0].set_col(col, &vals);
        self.advance("gather_col", self.model.blas1_time(2 * rows.len()));
    }

    /// Scatter `V[i, col]` into `z[rows[i]]` — load a basis column into a
    /// full-length work vector before SpMV/MPK.
    pub fn scatter_col_to_vec(&mut self, v: MatId, col: usize, z: VecId, rows: &[u32]) {
        if self.lost {
            return;
        }
        let colv = self.mats[v.0].col_to_vec(col);
        assert_eq!(colv.len(), rows.len());
        let zv = &mut self.vecs[z.0];
        for (i, &r) in rows.iter().enumerate() {
            zv[r as usize] = colv[i];
        }
        self.advance("scatter_col", self.model.blas1_time(2 * rows.len()));
    }

    /// Compress selected entries of a device vector into a contiguous host
    /// buffer (the "compress ... into w" kernel of Fig. 4). PCIe cost is
    /// charged separately by the `MultiGpu` transfer that ships the result.
    pub fn compress(&mut self, z: VecId, idxs: &[u32]) -> Vec<f64> {
        if self.lost {
            return Vec::new();
        }
        let zv = &self.vecs[z.0];
        let out: Vec<f64> = idxs.iter().map(|&i| zv[i as usize]).collect();
        self.advance("halo_pack", self.model.blas1_time(2 * idxs.len()));
        out
    }

    /// Expand host values into selected entries of a device vector (the
    /// "expand w into a full vector" kernel of Fig. 4).
    pub fn expand(&mut self, z: VecId, idxs: &[u32], vals: &[f64]) {
        if self.lost {
            return;
        }
        assert_eq!(idxs.len(), vals.len());
        let zv = &mut self.vecs[z.0];
        for (&i, &v) in idxs.iter().zip(vals) {
            zv[i as usize] = v;
        }
        self.advance("halo_unpack", self.model.blas1_time(2 * idxs.len()));
    }

    // ---------- precision-tagged kernel variants ----------
    //
    // The mixed-precision MPK path moves its working data at reduced
    // width: pack/unpack and column-load kernels take a `Precision`,
    // quantize the values through it (explicit rounding point; identity
    // for `F64`), and charge the narrower streaming cost. The `F64`
    // instantiation delegates to the plain kernel, so the double-precision
    // solver is bit-identical with or without these entry points.

    /// [`Device::compress`] at a given precision: values are rounded to
    /// `prec` as they are packed (the halo buffer is `prec`-wide on the
    /// wire) and the kernel is charged at that width.
    pub fn compress_p(&mut self, z: VecId, idxs: &[u32], prec: Precision) -> Vec<f64> {
        match prec {
            Precision::F64 => self.compress(z, idxs),
            Precision::F32 => {
                if self.lost {
                    return Vec::new();
                }
                let zv = &self.vecs[z.0];
                let out: Vec<f64> = idxs.iter().map(|&i| prec.quantize(zv[i as usize])).collect();
                self.advance("halo_pack", self.model.blas1_time_f32(2 * idxs.len()));
                out
            }
        }
    }

    /// [`Device::expand`] at a given precision: incoming values are
    /// rounded to `prec` before landing in the device vector.
    pub fn expand_p(&mut self, z: VecId, idxs: &[u32], vals: &[f64], prec: Precision) {
        match prec {
            Precision::F64 => self.expand(z, idxs, vals),
            Precision::F32 => {
                if self.lost {
                    return;
                }
                assert_eq!(idxs.len(), vals.len());
                let zv = &mut self.vecs[z.0];
                for (&i, &v) in idxs.iter().zip(vals) {
                    zv[i as usize] = prec.quantize(v);
                }
                self.advance("halo_unpack", self.model.blas1_time_f32(2 * idxs.len()));
            }
        }
    }

    /// [`Device::scatter_col_to_vec`] at a given precision: the basis
    /// column is rounded to `prec` as it is loaded into the MPK work
    /// vector (the rounding point where the f64 basis enters the f32
    /// recurrence).
    pub fn scatter_col_to_vec_p(
        &mut self,
        v: MatId,
        col: usize,
        z: VecId,
        rows: &[u32],
        prec: Precision,
    ) {
        match prec {
            Precision::F64 => self.scatter_col_to_vec(v, col, z, rows),
            Precision::F32 => {
                if self.lost {
                    return;
                }
                let colv = self.mats[v.0].col_to_vec(col);
                assert_eq!(colv.len(), rows.len());
                let zv = &mut self.vecs[z.0];
                for (i, &r) in rows.iter().enumerate() {
                    zv[r as usize] = prec.quantize(colv[i]);
                }
                self.advance("scatter_col", self.model.blas1_time_f32(2 * rows.len()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::SdcTargets;
    use ca_sparse::gen::laplace2d;

    fn dev() -> Device {
        Device::new(0, Arc::new(PerfModel::default()))
    }

    #[test]
    fn free_returns_bytes_and_keeps_ids_stable() {
        let mut d = dev();
        let v0 = d.alloc_vec(100).unwrap();
        let m0 = d.alloc_mat(50, 4).unwrap();
        let a = laplace2d(8, 8);
        let ell = Ell::from_csr(&a);
        let ell_bytes = ell.bytes();
        let s0 = d.load_slice(ell, (0..64).collect()).unwrap();
        let used = d.mem_used();
        assert_eq!(used, 100 * 8 + 50 * 4 * 8 + ell_bytes + 64 * 4);
        d.free_vec(v0);
        assert_eq!(d.mem_used(), used - 800);
        d.free_mat(m0);
        assert_eq!(d.mem_used(), used - 800 - 1600);
        d.free_slice(s0);
        assert_eq!(d.mem_used(), 0);
        // double-free is idempotent (tombstoned slots release zero bytes)
        d.free_vec(v0);
        d.free_mat(m0);
        d.free_slice(s0);
        assert_eq!(d.mem_used(), 0);
        // later allocations get fresh ids; earlier ids stay valid indices
        let v1 = d.alloc_vec(10).unwrap();
        assert_ne!(v1, v0);
        assert_eq!(d.vec(v0).len(), 0);
        assert_eq!(d.vec(v1).len(), 10);
    }

    #[test]
    fn freed_memory_is_reusable() {
        let mut d =
            Device::new(0, Arc::new(PerfModel { dev_mem_capacity: 4096, ..PerfModel::default() }));
        let v = d.alloc_vec(400).unwrap(); // 3200 of 4096 bytes
        assert!(d.alloc_vec(400).is_err());
        d.free_vec(v);
        assert!(d.alloc_vec(400).is_ok());
    }

    #[test]
    fn mem_rollback_discards_partial_build() {
        let mut d = dev();
        let keep = d.alloc_vec(64).unwrap();
        let mark = d.mem_checkpoint();
        let used = d.mem_used();
        let _v = d.alloc_vec(128).unwrap();
        let _m = d.alloc_mat(16, 16).unwrap();
        d.mem_rollback(&mark);
        assert_eq!(d.mem_used(), used);
        assert_eq!(d.vec(keep).len(), 64);
        // the slots themselves are gone, so the next alloc reuses them
        let v2 = d.alloc_vec(1).unwrap();
        assert_eq!(d.vec(v2).len(), 1);
    }

    #[test]
    fn clock_advances_on_kernels() {
        let mut d = dev();
        let v = d.alloc_mat(1000, 4).unwrap();
        assert_eq!(d.clock(), 0.0);
        d.dot_cols(v, 0, 1);
        let t1 = d.clock();
        assert!(t1 > 0.0);
        d.dot_cols(v, 0, 1);
        assert!((d.clock() - 2.0 * t1).abs() < 1e-15);
    }

    #[test]
    fn dot_and_axpy_compute() {
        let mut d = dev();
        let v = d.alloc_mat(3, 2).unwrap();
        d.mat_mut(v).set_col(0, &[1.0, 2.0, 3.0]);
        d.mat_mut(v).set_col(1, &[4.0, 5.0, 6.0]);
        assert_eq!(d.dot_cols(v, 0, 1), 32.0);
        d.axpy_cols(v, 2.0, 0, 1);
        assert_eq!(d.mat(v).col(1), &[6.0, 9.0, 12.0]);
        d.scal_col(v, 0, -1.0);
        assert_eq!(d.mat(v).col(0), &[-1.0, -2.0, -3.0]);
    }

    #[test]
    fn gemv_t_matches_dots() {
        let mut d = dev();
        let v = d.alloc_mat(5, 3).unwrap();
        for j in 0..3 {
            let col: Vec<f64> = (0..5).map(|i| (i + j) as f64).collect();
            d.mat_mut(v).set_col(j, &col);
        }
        let r = d.gemv_t_cols(v, 0, 2, 2, GemvVariant::MagmaTallSkinny);
        let m = d.mat(v);
        assert_eq!(r[0], blas1::dot(m.col(0), m.col(2)));
        assert_eq!(r[1], blas1::dot(m.col(1), m.col(2)));
    }

    #[test]
    fn gemv_update_orthogonalizes() {
        let mut d = dev();
        let v = d.alloc_mat(4, 2).unwrap();
        d.mat_mut(v).set_col(0, &[1.0, 0.0, 0.0, 0.0]);
        d.mat_mut(v).set_col(1, &[3.0, 1.0, 0.0, 0.0]);
        let r = d.gemv_t_cols(v, 0, 1, 1, GemvVariant::Cublas);
        d.gemv_n_update(v, 0, 1, &r, 1);
        assert_eq!(d.mat(v).col(1), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn syrk_variants_agree_numerically() {
        let mut d = dev();
        let v = d.alloc_mat(100, 4).unwrap();
        for j in 0..4 {
            let col: Vec<f64> = (0..100).map(|i| ((i * (j + 1)) as f64 * 0.01).sin()).collect();
            d.mat_mut(v).set_col(j, &col);
        }
        let b1 = d.syrk_cols(v, 0, 4, GemmVariant::Cublas);
        let b2 = d.syrk_cols(v, 0, 4, GemmVariant::Batched { h: 32 });
        for i in 0..4 {
            for j in 0..4 {
                assert!((b1[(i, j)] - b2[(i, j)]).abs() < 1e-12);
                assert_eq!(b2[(i, j)], b2[(j, i)]);
            }
        }
    }

    #[test]
    fn batched_syrk_charges_less_time_than_cublas() {
        let mut d = dev();
        let v = d.alloc_mat(100_000, 8).unwrap();
        let t0 = d.clock();
        d.syrk_cols(v, 0, 8, GemmVariant::Cublas);
        let t_cublas = d.clock() - t0;
        let t1 = d.clock();
        d.syrk_cols(v, 0, 8, GemmVariant::Batched { h: 384 });
        let t_batched = d.clock() - t1;
        assert!(t_batched < t_cublas, "batched {t_batched} vs cublas {t_cublas}");
    }

    #[test]
    fn trsm_applies_inverse() {
        let mut d = dev();
        let v = d.alloc_mat(3, 2).unwrap();
        d.mat_mut(v).set_col(0, &[2.0, 4.0, 6.0]);
        d.mat_mut(v).set_col(1, &[3.0, 3.0, 3.0]);
        let mut r = Mat::zeros(2, 2);
        r[(0, 0)] = 2.0;
        r[(0, 1)] = 1.0;
        r[(1, 1)] = 3.0;
        d.trsm_cols(v, 0, 2, &r).unwrap();
        // col0 /= 2 -> [1,2,3]; col1 = (col1 - 1*col0_orig/2... forward sweep:
        // col1 -= r01 * col0_new = [3,3,3] - [1,2,3] = [2,1,0]; /3 -> [2/3,1/3,0]
        assert_eq!(d.mat(v).col(0), &[1.0, 2.0, 3.0]);
        let c1 = d.mat(v).col(1);
        assert!((c1[0] - 2.0 / 3.0).abs() < 1e-15);
        assert!((c1[2] - 0.0).abs() < 1e-15);
    }

    #[test]
    fn local_qr_leaves_orthonormal_q() {
        let mut d = dev();
        let v = d.alloc_mat(50, 3).unwrap();
        for j in 0..3 {
            let col: Vec<f64> = (0..50).map(|i| ((i * 7 + j * 3) % 13) as f64 - 6.0).collect();
            d.mat_mut(v).set_col(j, &col);
        }
        let orig = d.mat(v).cols_copy(0, 3);
        let r = d.local_qr_cols(v, 0, 3);
        let q = d.mat(v).cols_copy(0, 3);
        assert!(ca_dense::norms::orthogonality_error(&q) < 1e-12);
        assert!(ca_dense::norms::factorization_error(&orig, &q, &r) < 1e-13);
    }

    #[test]
    fn spmv_scatter_places_rows() {
        let mut d = dev();
        let a = laplace2d(4, 4); // n = 16
        let rows: Vec<u32> = vec![2, 5, 7];
        let sl = a.select_rows(&[2, 5, 7]);
        let s = d.load_slice(Ell::from_csr(&sl), rows).unwrap();
        let x = d.alloc_vec(16).unwrap();
        for (i, xv) in d.vec_mut(x).iter_mut().enumerate() {
            *xv = i as f64;
        }
        let z = d.alloc_vec(16).unwrap();
        d.spmv_scatter(s, x, z);
        // check z[5] = row 5 of A times x
        let mut y = vec![0.0; 16];
        let xs: Vec<f64> = (0..16).map(|i| i as f64).collect();
        ca_sparse::spmv::spmv(&a, &xs, &mut y);
        assert_eq!(d.vec(z)[5], y[5]);
        assert_eq!(d.vec(z)[2], y[2]);
        assert_eq!(d.vec(z)[0], 0.0); // untouched
    }

    #[test]
    fn compress_expand_roundtrip() {
        let mut d = dev();
        let z = d.alloc_vec(10).unwrap();
        for (i, v) in d.vec_mut(z).iter_mut().enumerate() {
            *v = i as f64;
        }
        let idxs = vec![1u32, 3, 8];
        let w = d.compress(z, &idxs);
        assert_eq!(w, vec![1.0, 3.0, 8.0]);
        let z2 = d.alloc_vec(10).unwrap();
        d.expand(z2, &idxs, &w);
        assert_eq!(d.vec(z2)[3], 3.0);
        assert_eq!(d.vec(z2)[0], 0.0);
    }

    #[test]
    fn capacity_enforced() {
        let model = PerfModel { dev_mem_capacity: 1 << 20, ..Default::default() }; // 1 MiB toy
        let mut d = Device::new(0, Arc::new(model));
        d.alloc_vec(100_000).unwrap(); // 800 KB fits
        let err = d.alloc_vec(100_000).unwrap_err(); // 1.6 MB total: typed error
        assert_eq!(
            err,
            GpuSimError::OutOfMemory { device: 0, requested: 800_000, free: (1 << 20) - 800_000 }
        );
        assert!(err.to_string().contains("out of memory"));
    }

    #[test]
    fn injected_alloc_fault_fires_once() {
        let mut d = dev();
        d.set_faults(Some(Arc::new(crate::faults::FaultPlan::new(1).with_alloc_fault(0, 1))));
        d.alloc_vec(10).unwrap(); // alloc 0 fine
        let err = d.alloc_vec(10).unwrap_err(); // alloc 1 injected
        assert!(matches!(err, GpuSimError::OutOfMemory { device: 0, .. }));
        d.alloc_vec(10).unwrap(); // alloc 2 fine again
    }

    #[test]
    fn sdc_perturbs_one_spmv_element() {
        let a = laplace2d(4, 4);
        let run = |faults: Option<Arc<crate::faults::FaultPlan>>| {
            let mut d = dev();
            d.set_faults(faults);
            let s = d.load_slice(Ell::from_csr(&a), (0..16).collect()).unwrap();
            let x = d.alloc_vec(16).unwrap();
            for (i, xv) in d.vec_mut(x).iter_mut().enumerate() {
                *xv = 1.0 + i as f64;
            }
            let z = d.alloc_vec(16).unwrap();
            d.spmv_scatter(s, x, z);
            (d.vec(z).to_vec(), d.sdc_injected(), d.clock())
        };
        let (clean, n0, t0) = run(None);
        let plan = crate::faults::FaultPlan::new(9).with_sdc(1.0, SdcTargets::spmv_only());
        let (dirty, n1, t1) = run(Some(Arc::new(plan)));
        assert_eq!(n0, 0);
        assert_eq!(n1, 1);
        assert_eq!(t0, t1, "SDC must not change the clock");
        let ndiff = clean.iter().zip(&dirty).filter(|(a, b)| a != b).count();
        assert_eq!(ndiff, 1, "exactly one element corrupted");
    }

    #[test]
    fn device_loss_freezes_clock_and_ops() {
        let mut d = dev();
        d.set_faults(Some(Arc::new(crate::faults::FaultPlan::new(0).with_device_loss(0, 2))));
        let v = d.alloc_mat(100, 2).unwrap();
        d.dot_cols(v, 0, 1); // op 1
        d.dot_cols(v, 0, 1); // op 2 — completes
        assert!(!d.is_lost());
        let t = d.clock();
        d.dot_cols(v, 0, 1); // op 3 — kills the device
        assert!(d.is_lost());
        assert_eq!(d.clock(), t, "dead device's clock is frozen");
        d.dot_cols(v, 0, 1);
        assert_eq!(d.clock(), t);
    }

    #[test]
    fn lost_device_kernels_are_inert() {
        let mut d = dev();
        d.set_faults(Some(Arc::new(crate::faults::FaultPlan::new(0).with_device_loss(0, 0))));
        let v = d.alloc_mat(16, 3).unwrap();
        d.mat_mut(v).set_col(0, &[2.0; 16]);
        d.mat_mut(v).set_col(1, &[3.0; 16]);
        d.scal_col(v, 0, 1.0); // first op kills the device
        assert!(d.is_lost());
        let ops = d.ops();
        // a dead device accepts no commands: neutral returns, no mutation
        assert_eq!(d.dot_cols(v, 0, 1), 0.0);
        assert_eq!(d.sum_col_abs(v, 0), [0.0; 2]);
        assert_eq!(d.gemv_t_cols(v, 0, 2, 1, GemvVariant::Cublas), vec![0.0; 2]);
        let b = d.syrk_cols(v, 0, 2, GemmVariant::Cublas);
        assert_eq!((b.nrows(), b.ncols()), (2, 2));
        assert_eq!(b[(0, 0)], 0.0);
        d.axpy_cols(v, 5.0, 0, 1);
        d.copy_col(v, 0, 2);
        assert_eq!(d.mat(v).col(1), &[3.0; 16], "no mutation after loss");
        assert_eq!(d.mat(v).col(2), &[0.0; 16]);
        assert!(d.compress(VecId(0), &[0]).is_empty());
        assert_eq!(d.ops(), ops, "op counter frozen after loss");
        assert_eq!(d.clock(), 0.0, "clock frozen after loss");
    }

    #[test]
    fn zero_rate_plan_is_bit_identical() {
        let run = |faults: Option<Arc<crate::faults::FaultPlan>>| {
            let mut d = dev();
            d.set_faults(faults);
            let v = d.alloc_mat(500, 4).unwrap();
            for j in 0..4 {
                let col: Vec<f64> = (0..500).map(|i| ((i * (j + 2)) as f64 * 0.01).cos()).collect();
                d.mat_mut(v).set_col(j, &col);
            }
            let r = d.dot_cols(v, 0, 1);
            let b = d.syrk_cols(v, 0, 4, GemmVariant::Batched { h: 64 });
            (r, b, d.clock())
        };
        let (r0, b0, t0) = run(None);
        let (r1, b1, t1) = run(Some(Arc::new(crate::faults::FaultPlan::new(123))));
        assert_eq!(r0.to_bits(), r1.to_bits());
        assert_eq!(t0.to_bits(), t1.to_bits());
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(b0[(i, j)].to_bits(), b1[(i, j)].to_bits());
            }
        }
    }

    #[test]
    fn f32_slice_spmv_matches_f32_reference_and_costs_less() {
        let a = laplace2d(6, 6); // n = 36
        let xs: Vec<f64> = (0..36).map(|i| (1.0 + i as f64 * 0.37).sin()).collect();

        let run = |storage: SpStorage| {
            let mut d = dev();
            let s = d.load_slice_storage(storage, (0..36).collect()).unwrap();
            let x = d.alloc_vec(36).unwrap();
            d.vec_mut(x).copy_from_slice(&xs);
            let z = d.alloc_vec(36).unwrap();
            d.spmv_scatter(s, x, z);
            (d.vec(z).to_vec(), d.clock())
        };
        let (y64, t64) = run(SpStorage::Ell(Ell::from_csr(&a)));
        let (y32, t32) = run(SpStorage::EllF32(Ell::from_csr(&a.cast::<f32>())));

        // reference: same kernel written directly in f32
        let e32: Ell<f32> = Ell::from_csr(&a.cast::<f32>());
        let xf: Vec<f32> = xs.iter().map(|&v| v as f32).collect();
        let mut yf = vec![0.0f32; 36];
        e32.spmv(&xf, &mut yf);
        for i in 0..36 {
            assert_eq!(y32[i].to_bits(), (yf[i] as f64).to_bits(), "row {i}");
            assert!((y32[i] - y64[i]).abs() < 1e-5 * y64[i].abs().max(1.0));
        }
        assert!(t32 < t64, "f32 SpMV must be cheaper: {t32} vs {t64}");
    }

    #[test]
    fn f32_storage_is_half_the_value_bytes() {
        let a = laplace2d(5, 5);
        let e64 = SpStorage::Ell(Ell::from_csr(&a));
        let e32 = SpStorage::EllF32(Ell::from_csr(&a.cast::<f32>()));
        assert_eq!(e64.prec(), Precision::F64);
        assert_eq!(e32.prec(), Precision::F32);
        let slots = Ell::from_csr(&a).padded_nnz();
        assert_eq!(e64.bytes(), slots * 12);
        assert_eq!(e32.bytes(), slots * 8);
        assert_eq!(e64.bytes() - e32.bytes(), slots * 4);
    }

    #[test]
    fn shift_scatter_f32_quantizes_recurrence() {
        let a = laplace2d(4, 4);
        let xs: Vec<f64> = (0..16).map(|i| (0.3 + i as f64 * 0.21).cos()).collect();
        let (re, im2, scale) = (0.125f64, 0.5f64, 1.5f64);

        let run = |storage: SpStorage| {
            let mut d = dev();
            let s = d.load_slice_storage(storage, (0..16).collect()).unwrap();
            let zc = d.alloc_vec(16).unwrap();
            d.vec_mut(zc).copy_from_slice(&xs);
            let zn = d.alloc_vec(16).unwrap();
            for (i, v) in d.vec_mut(zn).iter_mut().enumerate() {
                *v = 0.01 * i as f64;
            }
            d.spmv_shift_scatter(s, zc, zn, re, im2, scale);
            d.vec(zn).to_vec()
        };
        let z32 = run(SpStorage::EllF32(Ell::from_csr(&a.cast::<f32>())));

        // reference computed explicitly in f32
        let e32: Ell<f32> = Ell::from_csr(&a.cast::<f32>());
        let xf: Vec<f32> = xs.iter().map(|&v| v as f32).collect();
        let mut yf = vec![0.0f32; 16];
        e32.spmv(&xf, &mut yf);
        for i in 0..16 {
            let shifted = scale as f32 * (yf[i] - re as f32 * xs[i] as f32);
            let expect = shifted + im2 as f32 * (0.01 * i as f64) as f32;
            assert_eq!(z32[i].to_bits(), (expect as f64).to_bits(), "row {i}");
        }
    }

    #[test]
    fn precision_tagged_kernels_delegate_on_f64_and_quantize_on_f32() {
        let vals: Vec<f64> = (0..12).map(|i| 0.1 + i as f64 * 0.07).collect();
        let idxs: Vec<u32> = vec![0, 3, 7, 11];

        // F64 variants are the plain kernels: same data, same clock
        let run64 = |tagged: bool| {
            let mut d = dev();
            let z = d.alloc_vec(12).unwrap();
            d.vec_mut(z).copy_from_slice(&vals);
            let w =
                if tagged { d.compress_p(z, &idxs, Precision::F64) } else { d.compress(z, &idxs) };
            let z2 = d.alloc_vec(12).unwrap();
            if tagged {
                d.expand_p(z2, &idxs, &w, Precision::F64);
            } else {
                d.expand(z2, &idxs, &w);
            }
            (d.vec(z2).to_vec(), d.clock())
        };
        let (a, ta) = run64(false);
        let (b, tb) = run64(true);
        assert_eq!(a, b);
        assert_eq!(ta.to_bits(), tb.to_bits());

        // F32 variants quantize through f32 and charge less
        let mut d = dev();
        let z = d.alloc_vec(12).unwrap();
        d.vec_mut(z).copy_from_slice(&vals);
        let w = d.compress_p(z, &idxs, Precision::F32);
        let t32 = d.clock();
        for (k, &i) in idxs.iter().enumerate() {
            assert_eq!(w[k].to_bits(), (vals[i as usize] as f32 as f64).to_bits());
        }
        assert!(t32 < ta, "f32 pack cheaper than f64: {t32} vs {ta}");

        // scatter_col_to_vec_p rounds the basis column on load
        let mut d = dev();
        let v = d.alloc_mat(4, 1).unwrap();
        d.mat_mut(v).set_col(0, &vals[..4]);
        let z = d.alloc_vec(8).unwrap();
        let rows: Vec<u32> = vec![1, 3, 5, 7];
        d.scatter_col_to_vec_p(v, 0, z, &rows, Precision::F32);
        for (i, &r) in rows.iter().enumerate() {
            assert_eq!(d.vec(z)[r as usize].to_bits(), (vals[i] as f32 as f64).to_bits());
        }
    }

    #[test]
    fn mem_free_reports_headroom() {
        let model = PerfModel { dev_mem_capacity: 1 << 20, ..Default::default() };
        let mut d = Device::new(0, Arc::new(model));
        assert_eq!(d.mem_free(), 1 << 20);
        d.alloc_vec(1000).unwrap();
        assert_eq!(d.mem_free(), (1 << 20) - 8000);
    }

    #[test]
    fn memory_accounting() {
        let mut d = dev();
        let before = d.mem_used();
        d.alloc_vec(100).unwrap();
        assert_eq!(d.mem_used() - before, 800);
        let a = laplace2d(3, 3);
        let e = Ell::from_csr(&a);
        let bytes = e.bytes();
        d.load_slice(e, (0..9).collect()).unwrap();
        assert_eq!(d.mem_used() - before, 800 + bytes + 9 * 4);
    }
}
