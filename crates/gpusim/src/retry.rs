//! Typed retry policy shared by every bounded-retry loop in the stack:
//! the executor's transient-transfer retry ([`crate::MultiGpu`]) and the
//! fault-tolerant driver's ABFT block recompute / residual-rollback
//! budgets (`ca-gmres`). One struct replaces the scattered
//! `set_max_transfer_attempts`-style knobs, and adds an optional capped
//! exponential backoff *in simulated time* — a real recovery system
//! spaces its retries out, and on this substrate that spacing must be
//! priced like everything else.
//!
//! The default policy keeps the historical semantics exactly: 4 attempts,
//! zero backoff. A zero-base backoff adds no simulated time at all, so
//! pre-policy runs replay bit for bit.

use serde::Serialize;

/// Bounded retry with capped exponential simulated-time backoff.
///
/// `max_attempts` counts *every* try including the first; `retries()` is
/// the number of re-tries after the first failure. The backoff before
/// re-try `k` (1-based) is `min(cap, base * factor^(k-1))`; with
/// `backoff_base_s == 0.0` (the default) no simulated time is added and
/// the policy is bit-invisible — the same gating discipline the fault
/// plan's multipliers use.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RetryPolicy {
    /// Total attempts allowed (first try + retries). Must be ≥ 1.
    pub max_attempts: u32,
    /// Backoff before the first re-try, in simulated seconds. Zero
    /// disables backoff entirely (bit-identical to the pre-backoff code).
    pub backoff_base_s: f64,
    /// Multiplier applied per further re-try (exponential growth).
    pub backoff_factor: f64,
    /// Upper bound on a single backoff interval, in simulated seconds.
    pub backoff_cap_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 4, backoff_base_s: 0.0, backoff_factor: 2.0, backoff_cap_s: 1e-2 }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` total attempts and no backoff (the
    /// shape the old `set_max_transfer_attempts` knob expressed).
    #[must_use]
    pub fn attempts(max_attempts: u32) -> Self {
        assert!(max_attempts >= 1, "a retry policy needs at least one attempt");
        Self { max_attempts, ..Self::default() }
    }

    /// Enable capped exponential backoff starting at `base_s` and growing
    /// by `factor` per re-try up to `cap_s`.
    #[must_use]
    pub fn with_backoff(mut self, base_s: f64, factor: f64, cap_s: f64) -> Self {
        assert!(base_s >= 0.0 && factor >= 1.0 && cap_s >= base_s);
        self.backoff_base_s = base_s;
        self.backoff_factor = factor;
        self.backoff_cap_s = cap_s;
        self
    }

    /// Re-tries allowed after the first attempt.
    #[must_use]
    pub fn retries(&self) -> usize {
        (self.max_attempts.saturating_sub(1)) as usize
    }

    /// Backoff before re-try `retry` (1-based: the re-try after the first
    /// failure is `retry = 1`). Returns `0.0` when backoff is disabled.
    #[must_use]
    pub fn backoff_s(&self, retry: u32) -> f64 {
        if self.backoff_base_s <= 0.0 || retry == 0 {
            return 0.0;
        }
        let raw = self.backoff_base_s * self.backoff_factor.powi(retry as i32 - 1);
        raw.min(self.backoff_cap_s)
    }

    /// Total backoff charged by a full sweep of `n` re-tries.
    #[must_use]
    pub fn total_backoff_s(&self, n: u32) -> f64 {
        (1..=n).map(|k| self.backoff_s(k)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_four_attempts_no_backoff() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_attempts, 4);
        assert_eq!(p.retries(), 3);
        for k in 0..10 {
            assert_eq!(p.backoff_s(k), 0.0, "default backoff must be bit-invisible");
        }
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy::attempts(8).with_backoff(1e-4, 2.0, 4e-4);
        assert_eq!(p.backoff_s(1), 1e-4);
        assert_eq!(p.backoff_s(2), 2e-4);
        assert_eq!(p.backoff_s(3), 4e-4);
        assert_eq!(p.backoff_s(4), 4e-4, "capped");
        assert_eq!(p.backoff_s(0), 0.0, "first attempt never waits");
        let total = p.total_backoff_s(4);
        assert!((total - (1e-4 + 2e-4 + 4e-4 + 4e-4)).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempts_rejected() {
        let _ = RetryPolicy::attempts(0);
    }
}
