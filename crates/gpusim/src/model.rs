//! Performance model of one NVIDIA M2090 (Fermi) GPU, its PCIe gen-2 link,
//! and the host's 16 Sandy Bridge cores.
//!
//! Every simulated kernel charges
//! `t = launches * launch_latency + flops / throughput + bytes / bandwidth`,
//! with per-kernel-variant `(throughput, bandwidth)` pairs. The variants and
//! their relative calibration reproduce the *shapes* of the paper's
//! Figure 11:
//!
//! * CUBLAS 4.2 DGEMM is terrible on tall-skinny operands ("the performance
//!   of CUBLAS DGEMM was lower than that of MKL or that of MAGMA DGEMV"),
//! * the paper's batched DGEMM with h-row panels "outperforms the other
//!   implementations",
//! * CUBLAS DGEMV is similarly poor and the optimized MAGMA tall-skinny
//!   DGEMV "improves the performance of DGEMV by a factor of about five",
//! * DDOT sits between the two GEMV variants,
//! * local Householder QR (xGEQR2, BLAS-1/2) "obtains only a fraction of
//!   the BLAS-3 performance" — which is why CAQR tracks MGS in Fig. 11c.
//!
//! Absolute constants are the M2090's public specs (665 Gflop/s DP peak,
//! 177 GB/s memory bandwidth) derated by typical achievable efficiencies,
//! and PCIe gen 2 x16 (~6 GB/s effective, ~10 us end-to-end latency).

/// Dense-kernel variants for the Gram-forming / projection GEMMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmVariant {
    /// Plain CUBLAS 4.2-like DGEMM: poor on tall-skinny shapes.
    Cublas,
    /// The paper's batched DGEMM: the tall matrix is cut into panels of
    /// `h` rows (rounded up to a multiple of 32), one small DGEMM per
    /// panel, then a reduction.
    Batched {
        /// Panel height before rounding to a multiple of 32.
        h: usize,
    },
}

impl GemmVariant {
    /// Panel height after the paper's round-up-to-32 alignment rule.
    pub fn panel_rows(&self) -> Option<usize> {
        match self {
            GemmVariant::Cublas => None,
            GemmVariant::Batched { h } => Some(h.div_ceil(32).max(1) * 32),
        }
    }
}

/// Dense-kernel variants for the tall-skinny matrix-vector product.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemvVariant {
    /// Plain CUBLAS 4.2-like DGEMV.
    Cublas,
    /// The paper's optimized MAGMA kernel: one thread block per column,
    /// each computing a dot product (§V-F).
    MagmaTallSkinny,
}

/// Which kernels an orthogonalization routine should use.
#[derive(Debug, Clone, Copy)]
pub struct KernelConfig {
    /// GEMM variant for Gram products and block updates.
    pub gemm: GemmVariant,
    /// GEMV variant for CGS's projections.
    pub gemv: GemvVariant,
}

impl Default for KernelConfig {
    /// The paper's optimized configuration: batched DGEMM (h = 384) and
    /// the MAGMA tall-skinny DGEMV.
    fn default() -> Self {
        Self { gemm: GemmVariant::Batched { h: 384 }, gemv: GemvVariant::MagmaTallSkinny }
    }
}

/// Calibrated machine constants (seconds, bytes, flop/s).
///
/// A fitted machine profile (see the `ca-tune` crate) persists these
/// constants by name and reloads them bit-identically; use
/// [`PerfModel::param`] / [`PerfModel::set_param`] /
/// [`PerfModel::apply_overrides`] to introspect or replace individual
/// constants without depending on the struct layout.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct PerfModel {
    /// Kernel-launch latency per launch.
    pub launch_s: f64,
    /// PCIe per-message latency (one direction).
    pub pcie_latency_s: f64,
    /// PCIe effective bandwidth, bytes/s (per-GPU link; links overlap).
    pub pcie_bw: f64,
    /// Host-side per-message handling overhead (drives the benefit of
    /// aggregating messages even when links overlap).
    pub host_msg_s: f64,
    /// Inter-node network per-message latency (the §VII outlook: "GPUs
    /// distributed over multiple compute nodes, where the communication is
    /// more expensive"). Applied on top of PCIe for devices off node 0.
    pub net_latency_s: f64,
    /// Inter-node network bandwidth, bytes/s.
    pub net_bw: f64,

    /// Device memory capacity in bytes (the M2090 carries 6 GiB; MPK's
    /// boundary slices must fit alongside the basis, §IV-A).
    pub dev_mem_capacity: usize,
    /// Device DP peak, flop/s.
    pub dev_peak_flops: f64,
    /// Device memory bandwidth, bytes/s (peak).
    pub dev_mem_bw: f64,

    /// ELL SpMV streaming efficiency (fraction of dev_mem_bw).
    pub eff_spmv: f64,
    /// Single-precision ELL SpMV streaming efficiency (fraction of
    /// dev_mem_bw). Slightly above `eff_spmv`: the 8-byte (value, index)
    /// slots coalesce better than the 12-byte DP ones on Fermi.
    pub eff_spmv_f32: f64,
    /// CUBLAS tall-skinny DGEMM: (flop/s cap, bytes/s cap).
    pub gemm_cublas: (f64, f64),
    /// Batched DGEMM: (flop/s cap, bytes/s cap).
    pub gemm_batched: (f64, f64),
    /// CUBLAS DGEMV bytes/s cap.
    pub gemv_cublas_bw: f64,
    /// MAGMA tall-skinny DGEMV bytes/s cap.
    pub gemv_magma_bw: f64,
    /// DDOT/AXPY/SCAL (BLAS-1) bytes/s cap.
    pub blas1_bw: f64,
    /// Local Householder QR (xGEQR2/xORGQR): (flop/s cap, bytes/s cap).
    pub geqr2: (f64, f64),
    /// Tall-skinny DTRSM bytes/s cap.
    pub trsm_bw: f64,

    /// Host (16-core Sandy Bridge + MKL): DP flop/s for small dense math.
    pub host_flops: f64,
    /// Host memory bandwidth, bytes/s.
    pub host_mem_bw: f64,
    /// Host MKL DGEMM throughput on tall-skinny shapes, flop/s.
    pub host_gemm_flops: f64,
    /// Host threaded-MKL SpMV bandwidth, bytes/s (the CPU baseline of Fig. 3).
    pub host_spmv_bw: f64,
}

impl Default for PerfModel {
    fn default() -> Self {
        Self {
            launch_s: 7e-6,
            pcie_latency_s: 11e-6,
            pcie_bw: 5.8e9,
            host_msg_s: 1.5e-6,
            net_latency_s: 25e-6,
            net_bw: 4.5e9,

            dev_mem_capacity: 6 * (1 << 30),
            dev_peak_flops: 665e9,
            dev_mem_bw: 177e9,

            eff_spmv: 0.52,
            eff_spmv_f32: 0.54,
            gemm_cublas: (24e9, 45e9),
            gemm_batched: (175e9, 132e9),
            gemv_cublas_bw: 18e9,
            gemv_magma_bw: 95e9,
            blas1_bw: 58e9,
            geqr2: (9e9, 26e9),
            trsm_bw: 85e9,

            host_flops: 120e9,
            host_mem_bw: 55e9,
            host_gemm_flops: 48e9,
            host_spmv_bw: 28e9,
        }
    }
}

impl PerfModel {
    /// Time of one device kernel with the given launch count, flops and
    /// bytes against a `(throughput, bandwidth)` cap pair. Compute and
    /// memory phases are charged additively (a pessimistic-but-stable
    /// roofline; the fitted caps already fold in overlap).
    #[inline]
    pub fn kernel_time(&self, launches: usize, flops: f64, tput: f64, bytes: f64, bw: f64) -> f64 {
        launches as f64 * self.launch_s + flops / tput + bytes / bw
    }

    /// ELL SpMV time: streams `padded_nnz` (value, index) slots, gathers
    /// `padded_nnz` vector entries (half-efficiency random access), writes
    /// `rows` results.
    pub fn spmv_time(&self, padded_nnz: usize, rows: usize) -> f64 {
        let stream = padded_nnz as f64 * 12.0 + rows as f64 * 8.0;
        let gather = padded_nnz as f64 * 8.0 * 2.0; // random-access penalty x2
        self.launch_s + (stream + gather) / (self.eff_spmv * self.dev_mem_bw)
    }

    /// Single-precision ELL SpMV time: same access pattern as
    /// [`PerfModel::spmv_time`] with 4-byte values — 8-byte (value, index)
    /// slots, 4-byte gathers (still a x2 random-access penalty), 4-byte
    /// results — against the `eff_spmv_f32` efficiency.
    pub fn spmv_time_f32(&self, padded_nnz: usize, rows: usize) -> f64 {
        let stream = padded_nnz as f64 * 8.0 + rows as f64 * 4.0;
        let gather = padded_nnz as f64 * 4.0 * 2.0;
        self.launch_s + (stream + gather) / (self.eff_spmv_f32 * self.dev_mem_bw)
    }

    /// HYB (ELL + COO) SpMV time: the regular part streams like ELL, the
    /// COO tail pays scalar random access (16-byte triplets, atomic-update
    /// flavored at 1/3 streaming efficiency) plus its own launch.
    pub fn spmv_hyb_time(&self, ell_padded: usize, coo_nnz: usize, rows: usize) -> f64 {
        let mut t = self.spmv_time(ell_padded, rows);
        if coo_nnz > 0 {
            t += self.launch_s
                + coo_nnz as f64 * (16.0 + 8.0) / (self.eff_spmv * self.dev_mem_bw / 3.0);
        }
        t
    }

    /// Single-precision HYB SpMV time: f32 ELL part plus a COO tail whose
    /// triplets shrink to 12 bytes (8-byte coordinates, 4-byte value).
    pub fn spmv_hyb_time_f32(&self, ell_padded: usize, coo_nnz: usize, rows: usize) -> f64 {
        let mut t = self.spmv_time_f32(ell_padded, rows);
        if coo_nnz > 0 {
            t += self.launch_s
                + coo_nnz as f64 * (12.0 + 4.0) / (self.eff_spmv_f32 * self.dev_mem_bw / 3.0);
        }
        t
    }

    /// Gram-product (`C := V1^T V2`, `m` rows, `k1 x k2` output) time for a
    /// GEMM variant. Bytes modeled as one streaming read of both operands.
    ///
    /// A skinny-operand penalty (`k2/(k2+2)`) derates the achievable
    /// bandwidth when the second operand has very few columns: GEMM tiles
    /// run mostly empty. This is the effect behind the paper's observation
    /// that CA-GMRES with s = 1 is much slower than GMRES — "these kernels
    /// are not optimized for orthogonalizing one vector at a time" (§VI-B).
    pub fn gemm_tn_time(&self, variant: GemmVariant, m: usize, k1: usize, k2: usize) -> f64 {
        let flops = 2.0 * m as f64 * k1 as f64 * k2 as f64;
        let skinny = k2 as f64 / (k2 as f64 + 2.0);
        match variant {
            GemmVariant::Cublas => {
                let bytes = 8.0 * m as f64 * (k1 + k2) as f64;
                let (t, b) = self.gemm_cublas;
                self.kernel_time(1, flops, t, bytes, b * skinny)
            }
            GemmVariant::Batched { .. } => {
                let rows = variant.panel_rows().unwrap();
                let nbatch = m.div_ceil(rows).max(1);
                // padded to a multiple of the panel height
                let padded = (nbatch * rows) as f64;
                let bytes = 8.0 * padded * (k1 + k2) as f64 + 8.0 * (nbatch * k1 * k2) as f64; // partial-result traffic
                let (t, b) = self.gemm_batched;
                // batched call + reduction kernel
                self.kernel_time(2, flops, t, bytes, b * skinny)
            }
        }
    }

    /// Single-precision Gram product (the \[23\] mixed-precision
    /// orthogonalization): half the memory traffic and double the Fermi
    /// arithmetic rate.
    pub fn gemm_tn_time_f32(&self, variant: GemmVariant, m: usize, k1: usize, k2: usize) -> f64 {
        let flops = 2.0 * m as f64 * k1 as f64 * k2 as f64;
        let skinny = k2 as f64 / (k2 as f64 + 2.0);
        match variant {
            GemmVariant::Cublas => {
                let bytes = 4.0 * m as f64 * (k1 + k2) as f64;
                let (t, b) = self.gemm_cublas;
                self.kernel_time(1, flops, 2.0 * t, bytes, b * skinny)
            }
            GemmVariant::Batched { .. } => {
                let rows = variant.panel_rows().unwrap();
                let nbatch = m.div_ceil(rows).max(1);
                let padded = (nbatch * rows) as f64;
                let bytes = 4.0 * padded * (k1 + k2) as f64 + 4.0 * (nbatch * k1 * k2) as f64;
                let (t, b) = self.gemm_batched;
                self.kernel_time(2, flops, 2.0 * t, bytes, b * skinny)
            }
        }
    }

    /// Tall dense update `V2 -= V1 C` (`m` rows, `k1` source cols, `k2`
    /// destination cols) with a GEMM variant.
    pub fn gemm_nn_time(&self, variant: GemmVariant, m: usize, k1: usize, k2: usize) -> f64 {
        // Same traffic pattern as the Gram product plus the destination write.
        self.gemm_tn_time(variant, m, k1, k2) + 8.0 * m as f64 * k2 as f64 / self.dev_mem_bw
    }

    /// Tall-skinny GEMV (`y := V^T x`, `m` rows, `k` cols) for a variant.
    pub fn gemv_t_time(&self, variant: GemvVariant, m: usize, k: usize) -> f64 {
        let bytes = 8.0 * m as f64 * (k as f64 + 1.0);
        let bw = match variant {
            GemvVariant::Cublas => self.gemv_cublas_bw,
            GemvVariant::MagmaTallSkinny => self.gemv_magma_bw,
        };
        self.launch_s + bytes / bw
    }

    /// BLAS-1 op over `words` f64 reads+writes total.
    pub fn blas1_time(&self, words: usize) -> f64 {
        self.launch_s + 8.0 * words as f64 / self.blas1_bw
    }

    /// BLAS-1 op over `words` f32 reads+writes total: half the traffic of
    /// the f64 variant against the same bandwidth cap (BLAS-1 is purely
    /// streaming, so no separate efficiency constant is warranted).
    pub fn blas1_time_f32(&self, words: usize) -> f64 {
        self.launch_s + 4.0 * words as f64 / self.blas1_bw
    }

    /// Local Householder QR of an `m x k` block, explicit Q formed
    /// (4 m k^2 flops, per the paper's Fig. 10 CAQR row).
    pub fn geqr2_time(&self, m: usize, k: usize) -> f64 {
        let flops = 4.0 * m as f64 * (k * k) as f64;
        let bytes = 8.0 * m as f64 * k as f64 * (k as f64 / 2.0); // k/2 passes
        let (t, b) = self.geqr2;
        self.kernel_time(k, flops, t, bytes, b)
    }

    /// Batched panel Householder QR (the paper's footnote-6 idea: "the
    /// potential of using batched QRs on a GPU"): `nb` independent `h x k`
    /// panel factorizations launched together. Same flops as the monolithic
    /// xGEQR2 but ~3x the throughput (panels saturate the SMs) and O(1)
    /// launches instead of O(k).
    pub fn geqr2_batched_time(&self, rows: usize, k: usize, h: usize) -> f64 {
        let nb = rows.div_ceil(h.max(k)).max(1);
        let flops = 4.0 * rows as f64 * (k * k) as f64;
        let bytes = 8.0 * rows as f64 * k as f64 * (k as f64 / 2.0);
        let (t, b) = self.geqr2;
        // + the k x k tree reduction and the per-panel Q application
        let tree_flops = 4.0 * (nb * k) as f64 * (k * k) as f64;
        let apply = self.gemm_tn_time(GemmVariant::Batched { h: h.max(32) }, rows, k, k);
        self.kernel_time(4, flops + tree_flops, 3.0 * t, bytes, 2.0 * b) + apply
    }

    /// Tall-skinny right triangular solve (`m x k` block, `k x k` factor).
    pub fn trsm_time(&self, m: usize, k: usize) -> f64 {
        let bytes = 8.0 * m as f64 * k as f64 * 2.0;
        self.launch_s + bytes / self.trsm_bw
    }

    /// One PCIe message of `bytes` in either direction.
    pub fn pcie_time(&self, bytes: usize) -> f64 {
        self.pcie_latency_s + bytes as f64 / self.pcie_bw
    }

    /// One device<->root-host message when the device lives on a remote
    /// compute node: PCIe hop plus a network hop.
    pub fn remote_link_time(&self, bytes: usize) -> f64 {
        self.pcie_time(bytes) + self.net_latency_s + bytes as f64 / self.net_bw
    }

    /// Host dense compute (Cholesky/QR/SVD of small matrices, reductions).
    pub fn host_time(&self, flops: f64, bytes: f64) -> f64 {
        flops / self.host_flops + bytes / self.host_mem_bw
    }

    /// Host threaded SpMV (the CPU GMRES baseline): CSR streaming.
    pub fn host_spmv_time(&self, nnz: usize, rows: usize) -> f64 {
        (nnz as f64 * 12.0 + rows as f64 * 16.0) / self.host_spmv_bw
    }

    /// Host tall-skinny GEMM (MKL line of Fig. 11a).
    pub fn host_gemm_time(&self, m: usize, k1: usize, k2: usize) -> f64 {
        let flops = 2.0 * m as f64 * k1 as f64 * k2 as f64;
        let bytes = 8.0 * m as f64 * (k1 + k2) as f64;
        flops / self.host_gemm_flops + bytes / self.host_mem_bw
    }
}

/// Names accepted by [`PerfModel::param`] / [`PerfModel::set_param`].
/// Tuple-valued constants are flattened as `name.tput` / `name.bw`.
pub const PARAM_NAMES: &[&str] = &[
    "launch_s",
    "pcie_latency_s",
    "pcie_bw",
    "host_msg_s",
    "net_latency_s",
    "net_bw",
    "dev_mem_capacity",
    "dev_peak_flops",
    "dev_mem_bw",
    "eff_spmv",
    "eff_spmv_f32",
    "gemm_cublas.tput",
    "gemm_cublas.bw",
    "gemm_batched.tput",
    "gemm_batched.bw",
    "gemv_cublas_bw",
    "gemv_magma_bw",
    "blas1_bw",
    "geqr2.tput",
    "geqr2.bw",
    "trsm_bw",
    "host_flops",
    "host_mem_bw",
    "host_gemm_flops",
    "host_spmv_bw",
];

impl PerfModel {
    /// Read one named constant (see [`PARAM_NAMES`]); `None` for an
    /// unknown name. `dev_mem_capacity` is reported in bytes as `f64`.
    pub fn param(&self, name: &str) -> Option<f64> {
        Some(match name {
            "launch_s" => self.launch_s,
            "pcie_latency_s" => self.pcie_latency_s,
            "pcie_bw" => self.pcie_bw,
            "host_msg_s" => self.host_msg_s,
            "net_latency_s" => self.net_latency_s,
            "net_bw" => self.net_bw,
            "dev_mem_capacity" => self.dev_mem_capacity as f64,
            "dev_peak_flops" => self.dev_peak_flops,
            "dev_mem_bw" => self.dev_mem_bw,
            "eff_spmv" => self.eff_spmv,
            "eff_spmv_f32" => self.eff_spmv_f32,
            "gemm_cublas.tput" => self.gemm_cublas.0,
            "gemm_cublas.bw" => self.gemm_cublas.1,
            "gemm_batched.tput" => self.gemm_batched.0,
            "gemm_batched.bw" => self.gemm_batched.1,
            "gemv_cublas_bw" => self.gemv_cublas_bw,
            "gemv_magma_bw" => self.gemv_magma_bw,
            "blas1_bw" => self.blas1_bw,
            "geqr2.tput" => self.geqr2.0,
            "geqr2.bw" => self.geqr2.1,
            "trsm_bw" => self.trsm_bw,
            "host_flops" => self.host_flops,
            "host_mem_bw" => self.host_mem_bw,
            "host_gemm_flops" => self.host_gemm_flops,
            "host_spmv_bw" => self.host_spmv_bw,
            _ => return None,
        })
    }

    /// Overwrite one named constant; returns whether the name was known.
    pub fn set_param(&mut self, name: &str, value: f64) -> bool {
        match name {
            "launch_s" => self.launch_s = value,
            "pcie_latency_s" => self.pcie_latency_s = value,
            "pcie_bw" => self.pcie_bw = value,
            "host_msg_s" => self.host_msg_s = value,
            "net_latency_s" => self.net_latency_s = value,
            "net_bw" => self.net_bw = value,
            "dev_mem_capacity" => self.dev_mem_capacity = value as usize,
            "dev_peak_flops" => self.dev_peak_flops = value,
            "dev_mem_bw" => self.dev_mem_bw = value,
            "eff_spmv" => self.eff_spmv = value,
            "eff_spmv_f32" => self.eff_spmv_f32 = value,
            "gemm_cublas.tput" => self.gemm_cublas.0 = value,
            "gemm_cublas.bw" => self.gemm_cublas.1 = value,
            "gemm_batched.tput" => self.gemm_batched.0 = value,
            "gemm_batched.bw" => self.gemm_batched.1 = value,
            "gemv_cublas_bw" => self.gemv_cublas_bw = value,
            "gemv_magma_bw" => self.gemv_magma_bw = value,
            "blas1_bw" => self.blas1_bw = value,
            "geqr2.tput" => self.geqr2.0 = value,
            "geqr2.bw" => self.geqr2.1 = value,
            "trsm_bw" => self.trsm_bw = value,
            "host_flops" => self.host_flops = value,
            "host_mem_bw" => self.host_mem_bw = value,
            "host_gemm_flops" => self.host_gemm_flops = value,
            "host_spmv_bw" => self.host_spmv_bw = value,
            _ => return false,
        }
        true
    }

    /// Snapshot every named constant in [`PARAM_NAMES`] order.
    pub fn params(&self) -> Vec<(&'static str, f64)> {
        PARAM_NAMES.iter().map(|&n| (n, self.param(n).unwrap())).collect()
    }

    /// Apply `(name, value)` overrides in order (a loaded machine profile
    /// replacing the built-in constants); returns how many names matched.
    pub fn apply_overrides<'a, I>(&mut self, overrides: I) -> usize
    where
        I: IntoIterator<Item = (&'a str, f64)>,
    {
        overrides.into_iter().filter(|(n, v)| self.set_param(n, *v)).count()
    }
}

/// A fitted efficiency curve: achieved rate as a piecewise-linear function
/// of a shape parameter (rows, column count, message size, ...).
///
/// Knots are kept sorted by shape. Evaluation interpolates linearly between
/// adjacent knots and **clamps** outside the fitted range — an out-of-range
/// shape returns the nearest endpoint's rate rather than extrapolating
/// (which could go negative and turn a predicted time into nonsense).
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct EffCurve {
    knots: Vec<(f64, f64)>,
}

impl EffCurve {
    /// Build a curve from `(shape, rate)` knots (sorted internally).
    ///
    /// # Panics
    /// If `knots` is empty or any coordinate is not finite.
    pub fn from_knots(mut knots: Vec<(f64, f64)>) -> Self {
        assert!(!knots.is_empty(), "EffCurve needs at least one knot");
        assert!(
            knots.iter().all(|&(x, y)| x.is_finite() && y.is_finite()),
            "EffCurve knots must be finite"
        );
        knots.sort_by(|a, b| a.0.total_cmp(&b.0));
        Self { knots }
    }

    /// The fitted `(shape, rate)` knots, sorted by shape.
    pub fn knots(&self) -> &[(f64, f64)] {
        &self.knots
    }

    /// Rate at `x`: linear interpolation between the surrounding knots,
    /// clamped to the endpoint rates outside the fitted range.
    pub fn eval(&self, x: f64) -> f64 {
        let k = &self.knots;
        let (first, last) = (k[0], k[k.len() - 1]);
        if x <= first.0 {
            return first.1;
        }
        if x >= last.0 {
            return last.1;
        }
        // First knot strictly right of x; x < last.0 guarantees it exists.
        let i = k.partition_point(|&(kx, _)| kx <= x);
        let (x0, y0) = k[i - 1];
        let (x1, y1) = k[i];
        if x1 == x0 {
            return y0;
        }
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_panel_rounds_to_32() {
        assert_eq!(GemmVariant::Batched { h: 100 }.panel_rows(), Some(128));
        assert_eq!(GemmVariant::Batched { h: 32 }.panel_rows(), Some(32));
        assert_eq!(GemmVariant::Batched { h: 1 }.panel_rows(), Some(32));
        assert_eq!(GemmVariant::Cublas.panel_rows(), None);
    }

    #[test]
    fn fig11a_ordering_batched_beats_mkl_beats_cublas() {
        // effective Gflop/s of the Gram product, n = 200k rows, s+1 = 30.
        let m = PerfModel::default();
        let (n, s1) = (200_000, 30);
        let flops = 2.0 * n as f64 * (s1 * s1) as f64;
        let g_cublas = flops / m.gemm_tn_time(GemmVariant::Cublas, n, s1, s1) / 1e9;
        let g_batched = flops / m.gemm_tn_time(GemmVariant::Batched { h: 384 }, n, s1, s1) / 1e9;
        let g_mkl = flops / m.host_gemm_time(n, s1, s1) / 1e9;
        assert!(g_batched > g_mkl, "batched {g_batched} <= mkl {g_mkl}");
        assert!(g_mkl > g_cublas, "mkl {g_mkl} <= cublas {g_cublas}");
    }

    #[test]
    fn fig11b_magma_gemv_about_5x_cublas() {
        let m = PerfModel::default();
        let (n, k) = (500_000, 30);
        let t_cublas = m.gemv_t_time(GemvVariant::Cublas, n, k);
        let t_magma = m.gemv_t_time(GemvVariant::MagmaTallSkinny, n, k);
        let ratio = t_cublas / t_magma;
        assert!(ratio > 3.5 && ratio < 7.0, "ratio {ratio}");
    }

    #[test]
    fn latency_dominates_small_transfers() {
        let m = PerfModel::default();
        let t_small = m.pcie_time(8);
        assert!(t_small < 1.05 * m.pcie_latency_s);
        // and bandwidth dominates big ones
        let t_big = m.pcie_time(100_000_000);
        assert!(t_big > 1_000.0 * m.pcie_latency_s);
    }

    #[test]
    fn spmv_time_scales_with_nnz() {
        let m = PerfModel::default();
        let t1 = m.spmv_time(1_000_000, 100_000);
        let t2 = m.spmv_time(2_000_000, 100_000);
        assert!(t2 > 1.8 * t1);
    }

    #[test]
    fn costs_monotone_in_problem_size() {
        let m = PerfModel::default();
        assert!(m.spmv_time(2_000_000, 100_000) > m.spmv_time(1_000_000, 100_000));
        assert!(
            m.gemm_tn_time(GemmVariant::Batched { h: 384 }, 200_000, 30, 30)
                > m.gemm_tn_time(GemmVariant::Batched { h: 384 }, 100_000, 30, 30)
        );
        assert!(m.pcie_time(1000) > m.pcie_time(100));
        assert!(m.remote_link_time(1000) > m.pcie_time(1000));
        assert!(m.trsm_time(100_000, 30) > m.trsm_time(50_000, 30));
    }

    #[test]
    fn skinny_gemm_penalty_hurts_single_column() {
        // per-flop cost at k2 = 1 must exceed k2 = 30 (the §VI-B effect)
        let m = PerfModel::default();
        let per_flop = |k2: usize| {
            let t = m.gemm_tn_time(GemmVariant::Batched { h: 384 }, 100_000, 30, k2);
            t / (2.0 * 100_000.0 * 30.0 * k2 as f64)
        };
        assert!(per_flop(1) > 1.8 * per_flop(30));
    }

    #[test]
    fn f32_gram_cheaper_than_f64() {
        let m = PerfModel::default();
        let t64 = m.gemm_tn_time(GemmVariant::Batched { h: 384 }, 200_000, 30, 30);
        let t32 = m.gemm_tn_time_f32(GemmVariant::Batched { h: 384 }, 200_000, 30, 30);
        assert!(t32 < 0.75 * t64, "f32 {t32} vs f64 {t64}");
    }

    #[test]
    fn f32_spmv_cheaper_than_f64() {
        // the Fig. 12 lever: halved value traffic must show up as a
        // strictly faster basis-generation kernel at every scale
        let m = PerfModel::default();
        for (nnz, rows) in [(100_000, 10_000), (1_000_000, 100_000), (20_000_000, 1_500_000)] {
            assert!(m.spmv_time_f32(nnz, rows) < m.spmv_time(nnz, rows));
            assert!(
                m.spmv_hyb_time_f32(nnz, rows / 10, rows) < m.spmv_hyb_time(nnz, rows / 10, rows)
            );
        }
        assert!(m.blas1_time_f32(300_000) < m.blas1_time(300_000));
    }

    #[test]
    fn hyb_beats_ell_when_padding_dominates() {
        let m = PerfModel::default();
        // 100k rows, true width 5 but one hub row forces ELL width 200
        let ell = m.spmv_time(200 * 100_000, 100_000);
        let hyb = m.spmv_hyb_time(5 * 100_000, 200, 100_000);
        assert!(hyb < ell / 5.0);
    }

    #[test]
    fn geqr2_slower_than_batched_gemm_per_flop() {
        // CAQR's local QR must be far off BLAS-3 speed (paper §V-E).
        let m = PerfModel::default();
        let (n, k) = (100_000, 30);
        let qr_flops = 4.0 * n as f64 * (k * k) as f64;
        let qr_gfs = qr_flops / m.geqr2_time(n, k) / 1e9;
        let gemm_flops = 2.0 * n as f64 * (k * k) as f64;
        let gemm_gfs = gemm_flops / m.gemm_tn_time(GemmVariant::Batched { h: 384 }, n, k, k) / 1e9;
        assert!(gemm_gfs > 3.0 * qr_gfs, "gemm {gemm_gfs} vs qr {qr_gfs}");
    }

    #[test]
    fn param_introspection_roundtrips_every_name() {
        let mut m = PerfModel::default();
        for &name in PARAM_NAMES {
            let v = m.param(name).unwrap_or_else(|| panic!("unknown param {name}"));
            assert!(m.set_param(name, v * 2.0), "set_param rejected {name}");
            assert_eq!(m.param(name).unwrap(), v * 2.0, "{name} did not stick");
            m.set_param(name, v);
        }
        assert_eq!(m, PerfModel::default());
        assert!(m.param("no_such_param").is_none());
        assert!(!m.set_param("no_such_param", 1.0));
        let n = m.apply_overrides([("eff_spmv", 0.4), ("bogus", 1.0)]);
        assert_eq!(n, 1);
        assert_eq!(m.eff_spmv, 0.4);
    }

    fn sample_times(m: &PerfModel) -> Vec<f64> {
        vec![
            m.spmv_time(1_234_567, 98_765),
            m.spmv_time_f32(1_234_567, 98_765),
            m.spmv_hyb_time(543_210, 777, 98_765),
            m.spmv_hyb_time_f32(543_210, 777, 98_765),
            m.gemm_tn_time(GemmVariant::Cublas, 200_000, 30, 30),
            m.gemm_tn_time(GemmVariant::Batched { h: 384 }, 200_000, 31, 11),
            m.gemm_tn_time_f32(GemmVariant::Batched { h: 384 }, 200_000, 30, 30),
            m.gemm_nn_time(GemmVariant::Batched { h: 384 }, 150_000, 20, 10),
            m.gemv_t_time(GemvVariant::Cublas, 500_000, 30),
            m.gemv_t_time(GemvVariant::MagmaTallSkinny, 500_000, 30),
            m.blas1_time(300_000),
            m.blas1_time_f32(300_000),
            m.geqr2_time(100_000, 30),
            m.geqr2_batched_time(100_000, 30, 256),
            m.trsm_time(100_000, 30),
            m.pcie_time(1_000_000),
            m.remote_link_time(1_000_000),
            m.host_time(1e9, 1e8),
            m.host_spmv_time(4_000_000, 100_000),
            m.host_gemm_time(200_000, 30, 30),
        ]
    }

    use proptest::prelude::*;

    proptest! {
        /// Profile round-trip: every constant rendered as its shortest
        /// decimal form (what the machine-profile JSON stores) and parsed
        /// back must leave every predicted time bit-identical, even after
        /// perturbing the constants.
        #[test]
        fn profile_roundtrip_bit_identical(
            scales in proptest::collection::vec(0.25f64..4.0, PARAM_NAMES.len()..PARAM_NAMES.len() + 1),
        ) {
            let mut m = PerfModel::default();
            for (&name, &sc) in PARAM_NAMES.iter().zip(&scales) {
                let v = m.param(name).unwrap();
                m.set_param(name, v * sc);
            }
            let mut m2 = PerfModel::default();
            for (name, v) in m.params() {
                let text = format!("{v:?}");
                let back: f64 = text.parse().unwrap();
                m2.set_param(name, back);
            }
            prop_assert_eq!(&m, &m2);
            for (a, b) in sample_times(&m).iter().zip(sample_times(&m2).iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// Between two adjacent knots the interpolant must stay inside the
    /// interval spanned by the knot rates and be monotone in x.
    fn check_monotone_between_knots(mut xs: Vec<f64>, ys: Vec<f64>, t0: f64, t1: f64) {
        xs.sort_by(f64::total_cmp);
        xs.dedup();
        let knots: Vec<(f64, f64)> = xs.iter().zip(&ys).map(|(&x, &y)| (x, y)).collect();
        let c = EffCurve::from_knots(knots);
        for w in c.knots().windows(2) {
            let ((x0, y0), (x1, y1)) = (w[0], w[1]);
            if x1 == x0 {
                continue;
            }
            let (ta, tb) = if t0 <= t1 { (t0, t1) } else { (t1, t0) };
            let xa = x0 + ta * (x1 - x0);
            let xb = x0 + tb * (x1 - x0);
            let (ya, yb) = (c.eval(xa), c.eval(xb));
            let (lo, hi) = (y0.min(y1), y0.max(y1));
            let tol = 1e-9 * hi.max(1.0);
            assert!(ya >= lo - tol && ya <= hi + tol, "eval escaped knot interval");
            // monotone along the segment, in the direction of the knots
            if y1 >= y0 {
                assert!(yb >= ya - tol, "not increasing: {ya} -> {yb}");
            } else {
                assert!(yb <= ya + tol, "not decreasing: {ya} -> {yb}");
            }
        }
    }

    /// Out-of-range shapes must clamp to the endpoint rates — never
    /// negative, never an extrapolated overshoot.
    fn check_clamps_out_of_range(mut xs: Vec<f64>, ys: Vec<f64>, probe: f64) {
        xs.sort_by(f64::total_cmp);
        let knots: Vec<(f64, f64)> = xs.iter().zip(&ys).map(|(&x, &y)| (x, y)).collect();
        let c = EffCurve::from_knots(knots);
        let k = c.knots();
        let (first, last) = (k[0], k[k.len() - 1]);
        assert_eq!(c.eval(first.0 - 1.0), first.1);
        assert_eq!(c.eval(last.0 + 1.0), last.1);
        assert!(c.eval(probe) >= 0.0);
    }

    proptest! {
        #[test]
        fn eff_curve_monotone_between_knots(
            xs in proptest::collection::vec(0.0f64..1e7, 3..8),
            ys in proptest::collection::vec(0.0f64..1e12, 8..9),
            t0 in 0.0f64..1.0, t1 in 0.0f64..1.0,
        ) {
            check_monotone_between_knots(xs, ys, t0, t1);
        }

        #[test]
        fn eff_curve_clamps_out_of_range(
            xs in proptest::collection::vec(-1e6f64..1e6, 2..6),
            ys in proptest::collection::vec(0.0f64..1e12, 6..7),
            probe in -1e9f64..1e9,
        ) {
            check_clamps_out_of_range(xs, ys, probe);
        }
    }
}
