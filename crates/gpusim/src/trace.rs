//! Perfetto / `chrome://tracing` export of recorded [`crate::StreamTrace`]s.
//!
//! [`export_chrome_trace`] turns the per-device command queues drained by
//! [`MultiGpu::take_traces`](crate::MultiGpu::take_traces) into the Trace
//! Event JSON format both `chrome://tracing` and [ui.perfetto.dev]
//! understand: one named track per device compute queue, one per copy
//! engine (PCIe link), and one host track marking device→host arrivals.
//! Kernel and copy commands become complete (`"ph": "X"`) slices with
//! microsecond timestamps; event records and waits become instants, so a
//! straggling device — a queue whose slices are stretched by a fail-slow
//! fault — is visible at a glance.
//!
//! The export is a pure function of the recorded commands: two runs with
//! the same seeds and fault plan serialize byte-identically, so a trace
//! file doubles as a determinism artifact.
//!
//! [ui.perfetto.dev]: https://ui.perfetto.dev

use crate::stream::Cmd;
use ca_obs as obs;
use std::fmt::Write as _;

/// Track ids within one device's group: queue, link, and the shared host
/// track. `tid`s are numeric in the trace format; names are attached with
/// `thread_name` metadata events.
fn queue_tid(d: usize) -> usize {
    2 * d + 1
}

fn link_tid(d: usize) -> usize {
    2 * d + 2
}

const HOST_TID: usize = 0;

/// Thread-name metadata plus a `thread_sort_index` so Perfetto renders the
/// rows in a stable order (host, then each device's queue and copy engine)
/// instead of by first-event time.
fn push_meta(out: &mut String, tid: usize, name: &str) {
    let _ = write!(
        out,
        "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":{tid},\
         \"args\":{{\"name\":\"{name}\"}}}},\n\
         {{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":0,\"tid\":{tid},\
         \"args\":{{\"sort_index\":{tid}}}}}"
    );
}

fn push_process_meta(out: &mut String) {
    let _ = write!(
        out,
        "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,\"tid\":0,\
         \"args\":{{\"name\":\"ca-gmres simulated timeline\"}}}},\n\
         {{\"ph\":\"M\",\"name\":\"process_sort_index\",\"pid\":0,\"tid\":0,\
         \"args\":{{\"sort_index\":0}}}},\n"
    );
}

fn push_slice(out: &mut String, tid: usize, name: &str, start_s: f64, dur_s: f64) {
    let _ = write!(
        out,
        ",\n{{\"ph\":\"X\",\"name\":\"{name}\",\"pid\":0,\"tid\":{tid},\
         \"ts\":{:.3},\"dur\":{:.3}}}",
        start_s * 1e6,
        dur_s * 1e6
    );
}

fn push_instant(out: &mut String, tid: usize, name: &str, at_s: f64) {
    let _ = write!(
        out,
        ",\n{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"{name}\",\"pid\":0,\"tid\":{tid},\
         \"ts\":{:.3}}}",
        at_s * 1e6
    );
}

/// Serialize per-device command traces (one `Vec<Cmd>` per device, as
/// returned by [`MultiGpu::take_traces`](crate::MultiGpu::take_traces))
/// into Trace Event JSON. Load the result in `chrome://tracing` or
/// Perfetto. Timestamps are microseconds of simulated time.
pub fn export_chrome_trace(traces: &[Vec<Cmd>]) -> String {
    let mut out = String::from("[\n");
    push_process_meta(&mut out);
    push_meta(&mut out, HOST_TID, "host");
    for d in 0..traces.len() {
        out.push_str(",\n");
        push_meta(&mut out, queue_tid(d), &format!("gpu{d} queue"));
        out.push_str(",\n");
        push_meta(&mut out, link_tid(d), &format!("gpu{d} copy engine"));
    }
    for (d, cmds) in traces.iter().enumerate() {
        for cmd in cmds {
            match *cmd {
                Cmd::Kernel { name, start, dur, .. } => {
                    push_slice(&mut out, queue_tid(d), name, start, dur);
                }
                Cmd::CopyToHost { bytes, start, finish } => {
                    let name = format!("D2H {bytes} B");
                    push_slice(&mut out, link_tid(d), &name, start, finish - start);
                    push_instant(&mut out, HOST_TID, &format!("gpu{d} arrival"), finish);
                }
                Cmd::CopyToDevice { bytes, start, finish } => {
                    let name = format!("H2D {bytes} B");
                    push_slice(&mut out, link_tid(d), &name, start, finish - start);
                }
                Cmd::EventRecord { event, at } => {
                    push_instant(&mut out, queue_tid(d), &format!("record e{}", event.index()), at);
                }
                Cmd::WaitEvent { event, until } => {
                    push_instant(
                        &mut out,
                        queue_tid(d),
                        &format!("wait e{}", event.index()),
                        until,
                    );
                }
            }
        }
    }
    out.push_str("\n]\n");
    out
}

/// Ingest drained per-device command traces into the active `ca-obs`
/// recording: kernels become named spans on the device's
/// [`obs::Track::Device`] timeline (plus `kernel.<name>.s` histograms and
/// `kernel.<name>.calls` counters), copies become spans on the
/// [`obs::Track::Link`] timeline with `copy.{h2d,d2h}.s` histograms, and
/// event records/waits become instants. No-op when no obs session is
/// active. Byte/message counters are *not* emitted here — the transfer
/// paths in [`MultiGpu`](crate::MultiGpu) count those live — so ingesting
/// a trace never double-counts.
///
/// Commands carry already-resolved simulated timestamps, so ingestion after
/// the run observes the exact timeline the run computed.
pub fn obs_ingest_traces(traces: &[Vec<Cmd>]) {
    if !obs::enabled() {
        return;
    }
    for (d, cmds) in traces.iter().enumerate() {
        let dev = obs::Track::Device(d as u32);
        let link = obs::Track::Link(d as u32);
        for cmd in cmds {
            match *cmd {
                Cmd::Kernel { name, start, dur, modeled } => {
                    obs::span(name, dev, start, start + dur);
                    obs::observe(&obs::names::kernel_seconds(name), dur);
                    obs::observe(&obs::names::kernel_modeled_seconds(name), modeled);
                    obs::counter_add(&obs::names::kernel_calls(name), 1);
                }
                Cmd::CopyToHost { bytes, start, finish } => {
                    obs::span(&format!("D2H {bytes} B"), link, start, finish);
                    obs::observe("copy.d2h.s", finish - start);
                }
                Cmd::CopyToDevice { bytes, start, finish } => {
                    obs::span(&format!("H2D {bytes} B"), link, start, finish);
                    obs::observe("copy.h2d.s", finish - start);
                }
                Cmd::EventRecord { event, at } => {
                    obs::instant(&format!("record e{}", event.index()), dev, at);
                }
                Cmd::WaitEvent { event, until } => {
                    obs::instant(&format!("wait e{}", event.index()), dev, until);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultPlan, MultiGpu};

    fn traced_run(plan: Option<FaultPlan>) -> Vec<Vec<Cmd>> {
        let mut mg = MultiGpu::with_defaults(2);
        if let Some(p) = plan {
            mg.set_fault_plan(p);
        }
        mg.enable_trace();
        let v0 = mg.device_mut(0).alloc_mat(20_000, 2).unwrap();
        let v1 = mg.device_mut(1).alloc_mat(20_000, 2).unwrap();
        mg.to_devices(&[640, 640]).unwrap();
        mg.run(|i, d| {
            let v = if i == 0 { v0 } else { v1 };
            d.dot_cols(v, 0, 1);
        });
        mg.to_host(&[64, 64]).unwrap();
        mg.take_traces()
    }

    #[test]
    fn exports_all_tracks_and_valid_json_shape() {
        let json = export_chrome_trace(&traced_run(None));
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        for name in ["\"host\"", "gpu0 queue", "gpu1 queue", "gpu0 copy engine", "gpu1 copy engine"]
        {
            assert!(json.contains(name), "missing track {name}");
        }
        assert!(json.contains("\"dot\""), "kernel slices carry their name");
        assert!(json.contains("thread_sort_index"));
        assert!(json.contains("process_name"));
        assert!(json.contains("H2D 640 B"));
        assert!(json.contains("D2H 64 B"));
        assert!(json.contains("arrival"));
        // balanced braces: every event object closes
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn export_is_deterministic() {
        let a = export_chrome_trace(&traced_run(Some(FaultPlan::new(5))));
        let b = export_chrome_trace(&traced_run(Some(FaultPlan::new(5))));
        assert_eq!(a, b);
    }

    #[test]
    fn straggler_slices_stretch() {
        // the slowed device's kernel slices must be visibly longer
        let clean = export_chrome_trace(&traced_run(None));
        let slow =
            export_chrome_trace(&traced_run(Some(FaultPlan::new(5).with_slowdown(1, 8.0, 0))));
        assert_ne!(clean, slow);
        let dur_of = |json: &str| -> f64 {
            // last kernel slice duration in the file
            json.lines()
                .filter(|l| l.contains("\"dot\""))
                .filter_map(|l| {
                    l.split("\"dur\":").nth(1).and_then(|s| {
                        s.trim_end_matches(['}', ',', '\n'])
                            .trim_end_matches('}')
                            .parse::<f64>()
                            .ok()
                    })
                })
                .fold(0.0, f64::max)
        };
        assert!(dur_of(&slow) > 4.0 * dur_of(&clean));
    }
}
