#![allow(clippy::needless_range_loop)]

//! Property and integration tests for the beyond-the-paper extensions:
//! HYB format, hypergraph partitioning, rank-revealing QRCP, fused CGS,
//! mixed precision, preconditioning, multi-node topology.

use ca_gmres_repro::dense::{norms, qr, Mat};
use ca_gmres_repro::gmres::precond::{Applied, Precond};
use ca_gmres_repro::sparse::hypergraph::{hypergraph_partition, Hypergraph};
use ca_gmres_repro::sparse::{gen, spmv, Csr, Hyb};
use proptest::prelude::*;

fn random_csr(n: usize, row_nnz: usize, seed: u64) -> Csr {
    gen::random_diag_dominant(n, row_nnz, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hyb_spmv_always_matches_csr(
        seed in 0u64..500,
        n in 10usize..120,
        row_nnz in 1usize..8,
        quantile in 0.0f64..1.0,
    ) {
        let a = random_csr(n, row_nnz, seed);
        let h = Hyb::from_csr(&a, quantile);
        prop_assert_eq!(h.nnz(), a.nnz());
        let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.13).cos()).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        spmv::spmv(&a, &x, &mut y1);
        h.spmv(&x, &mut y2);
        for i in 0..n {
            prop_assert!((y1[i] - y2[i]).abs() < 1e-11 * y1[i].abs().max(1.0));
        }
    }

    #[test]
    fn hypergraph_lambda_equals_mpk_scatter_at_s1(
        nx in 4usize..10,
        ny in 4usize..10,
    ) {
        // For s = 1, the MPK scatter volume sum_d |delta^(d,1)| equals the
        // column-net (lambda - 1) metric of the block partition: both count,
        // for every column, (number of parts needing it) - 1 ... for
        // structurally symmetric matrices where column j is needed by part p
        // iff p owns a row with a_ij != 0 and does not own row j.
        let a = gen::laplace2d(nx, ny);
        let n = a.nrows();
        let ndev = 3;
        let layout = ca_gmres_repro::gmres::layout::Layout::even(n, ndev);
        let plan = ca_gmres_repro::gmres::mpk::MpkPlan::new(&a, &layout, 1);
        let (_, scatter) = plan.comm_volume_per_block();
        let hg = Hypergraph::column_net(&a);
        let part: Vec<u32> = (0..n).map(|v| layout.owner(v) as u32).collect();
        prop_assert_eq!(hg.lambda_minus_one(&part, ndev), scatter);
    }

    #[test]
    fn qrcp_rank_matches_construction(
        seed in 1u64..500,
        full_rank in 1usize..5,
        extra in 0usize..3,
    ) {
        // build a matrix with known rank: full_rank random columns plus
        // `extra` linear combinations of them
        let m = 40;
        let mut st = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut rnd = || {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((st >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let base = Mat::from_fn(m, full_rank, |_, _| rnd());
        let k = full_rank + extra;
        let mut a = Mat::zeros(m, k);
        for j in 0..full_rank {
            a.set_col(j, base.col(j));
        }
        for e in 0..extra {
            // combination with O(1) coefficients
            let mut col = vec![0.0; m];
            for j in 0..full_rank {
                let c = 1.0 + ((e + j) % 3) as f64;
                for i in 0..m {
                    col[i] += c * base[(i, j)];
                }
            }
            a.set_col(full_rank + e, &col);
        }
        let f = qr::householder_qrcp(&a);
        prop_assert_eq!(f.rank(1e-8), full_rank);
        prop_assert!(norms::orthogonality_error(&f.q) < 1e-10);
    }

    #[test]
    fn precond_recover_is_exact_inverse_of_m(
        seed in 0u64..300,
        n in 6usize..60,
        block in 1usize..6,
    ) {
        // recover(M y) == y where M is reassembled from the block diagonal
        let a = random_csr(n, 3, seed);
        let ap = Applied::build(&a, Precond::BlockJacobi { block });
        let y: Vec<f64> = (0..n).map(|i| ((i * 3 % 11) as f64) - 5.0).collect();
        // compute M y directly from A's block diagonal
        let mut my = vec![0.0; n];
        for i in 0..n {
            let b = i / block;
            let lo = b * block;
            let hi = (lo + block).min(n);
            for j in lo..hi {
                my[i] += a.get(i, j) * y[j];
            }
        }
        let back = ap.recover(&my);
        for i in 0..n {
            prop_assert!((back[i] - y[i]).abs() < 1e-7 * y[i].abs().max(1.0),
                "i={}: {} vs {}", i, back[i], y[i]);
        }
    }
}

#[test]
fn hypergraph_partition_scatter_at_most_block_partition() {
    // the hypergraph partitioner optimizes exactly the scatter volume; it
    // must not lose to the trivial block split on the scrambled circuit
    let a = gen::circuit(5000, 13);
    let hg = Hypergraph::column_net(&a);
    let hp = hypergraph_partition(&a, 3, 3);
    let block: Vec<u32> = (0..5000).map(|v| (v * 3 / 5000) as u32).collect();
    let l_h = hg.lambda_minus_one(&hp.part, 3);
    let l_b = hg.lambda_minus_one(&block, 3);
    assert!(l_h < l_b, "hypergraph {l_h} vs block {l_b}");
}

#[test]
fn multinode_slows_gmres_but_ca_less() {
    use ca_gmres_repro::gmres::prelude::*;
    use ca_gmres_repro::gpusim::{KernelConfig, MultiGpu, PerfModel};
    let a = gen::circuit(10_000, 3);
    let (ab, _) = ca_gmres_repro::sparse::balance::balance(&a);
    let (a_ord, p, layout) = prepare(&ab, Ordering::Kway, 4);
    let b: Vec<f64> = (0..10_000).map(|i| ((i % 7) as f64) - 3.0).collect();
    let bp = ca_gmres_repro::sparse::perm::permute_vec(&b, &p);

    let run = |topo: Vec<usize>| {
        let mut mg1 =
            MultiGpu::with_topology(topo.clone(), PerfModel::default(), KernelConfig::default());
        let sys1 = System::new(&mut mg1, &a_ord, layout.clone(), 30, None).unwrap();
        sys1.load_rhs(&mut mg1, &bp).unwrap();
        let g = gmres(
            &mut mg1,
            &sys1,
            &GmresConfig { m: 30, rtol: 0.0, max_restarts: 2, ..Default::default() },
        );
        let mut mg2 = MultiGpu::with_topology(topo, PerfModel::default(), KernelConfig::default());
        let sys2 = System::new(&mut mg2, &a_ord, layout.clone(), 30, Some(10)).unwrap();
        sys2.load_rhs(&mut mg2, &bp).unwrap();
        let cfg = CaGmresConfig { s: 10, m: 30, rtol: 0.0, max_restarts: 3, ..Default::default() };
        let c = ca_gmres(&mut mg2, &sys2, &cfg);
        (g.stats.t_total / g.stats.restarts as f64, c.ca_stats.t_total / c.ca_stats.restarts as f64)
    };
    let (g1, c1) = run(vec![0, 0, 0, 0]); // single node
    let (g2, c2) = run(vec![0, 1, 2, 3]); // one GPU per node
    assert!(g2 > g1, "multi-node must slow GMRES down");
    let speedup1 = g1 / c1;
    let speedup2 = g2 / c2;
    assert!(
        speedup2 > speedup1,
        "CA speedup should grow with comm cost: {speedup1:.2} -> {speedup2:.2}"
    );
}

#[test]
fn fused_cgs_bitwise_matches_cgs_projections() {
    // the fused variant computes the same coefficients (identical order);
    // only the norm path differs — solutions agree to high accuracy
    use ca_gmres_repro::gmres::orth::{tsqr, TsqrKind};
    use ca_gmres_repro::gpusim::{MatId, MultiGpu};
    let (n, k, ndev) = (600usize, 6usize, 2usize);
    let setup = || -> (MultiGpu, Vec<MatId>) {
        let mut mg = MultiGpu::with_defaults(ndev);
        let ids = (0..ndev)
            .map(|d| {
                let dev = mg.device_mut(d);
                let v = dev.alloc_mat(n / ndev, k).unwrap();
                let mut st = (d as u64 + 5).wrapping_mul(0x9E3779B97F4A7C15) | 1;
                for j in 0..k {
                    let col: Vec<f64> = (0..n / ndev)
                        .map(|_| {
                            st = st.wrapping_mul(6364136223846793005).wrapping_add(1);
                            ((st >> 11) as f64 / (1u64 << 53) as f64) - 0.5
                        })
                        .collect();
                    dev.mat_mut(v).set_col(j, &col);
                }
                v
            })
            .collect();
        (mg, ids)
    };
    let (mut mg1, ids1) = setup();
    let r1 = tsqr(&mut mg1, &ids1, 0, k, TsqrKind::Cgs, true).unwrap();
    let (mut mg2, ids2) = setup();
    let r2 = tsqr(&mut mg2, &ids2, 0, k, TsqrKind::CgsFused, true).unwrap();
    for i in 0..k {
        for j in 0..k {
            assert!(
                (r1[(i, j)] - r2[(i, j)]).abs() < 1e-10 * r1[(i, j)].abs().max(1.0),
                "R({i},{j})"
            );
        }
    }
    // fused used fewer messages
    assert!(mg2.counters().total_msgs() < mg1.counters().total_msgs());
}
