//! Restart-boundary autotuning end to end: the `ca-tune` Retuner driving
//! the fault-tolerant driver's `AutoTune` hook.
//!
//! Two contracts are pinned here. Armed-but-idle autotuning must be
//! *invisible*: with a zero-rate fault plan the tuned run replays the
//! untuned run bit for bit (iterates, clocks, message counters). And
//! under a sustained fail-slow straggler the retuner must actually
//! re-plan — selecting a different `(s, layout)` than the healthy run
//! uses — and the solve must still converge to the same solution the
//! arithmetic-only path produces.

use ca_gmres_repro::gmres::cagmres::KernelMode;
use ca_gmres_repro::gmres::prelude::*;
use ca_gmres_repro::gpusim::{FaultPlan, KernelConfig, MultiGpu, PerfModel};
use ca_gmres_repro::sparse::gen;
use ca_gmres_repro::tune::{Candidate, Retuner};

const NDEV: usize = 3;

fn problem() -> (ca_gmres_repro::sparse::Csr, Vec<f64>) {
    let a = gen::laplace2d(14, 14);
    let b: Vec<f64> = (0..a.nrows()).map(|i| 1.0 + ((i * 13) % 7) as f64).collect();
    (a, b)
}

fn solver_cfg(autotune: bool) -> CaGmresConfig {
    CaGmresConfig {
        s: 5,
        m: 20,
        kernel: KernelMode::Spmv,
        rtol: 1e-8,
        max_restarts: 300,
        autotune,
        ..Default::default()
    }
}

fn base_candidate(cfg: &CaGmresConfig) -> Candidate {
    Candidate {
        s: cfg.s,
        basis: cfg.basis,
        tsqr: cfg.orth.tsqr,
        borth: cfg.orth.borth,
        kernel: cfg.kernel,
        ndev: NDEV,
        ordering: Ordering::Natural,
        reorth: cfg.orth.reorth,
        prec: cfg.mpk_prec,
    }
}

fn run(
    a: &ca_gmres_repro::sparse::Csr,
    b: &[f64],
    plan: Option<FaultPlan>,
    tune: bool,
) -> FtOutcome {
    let mut mg = MultiGpu::with_defaults(NDEV);
    if let Some(p) = plan {
        mg.set_fault_plan(p);
    }
    let cfg = FtConfig {
        solver: solver_cfg(tune),
        abft_spmv: false,
        abft_orth: false,
        residual_check: false,
        ..Default::default()
    };
    if tune {
        let mut tuner = Retuner::new(
            a,
            cfg.solver.m,
            PerfModel::default(),
            KernelConfig::default(),
            base_candidate(&cfg.solver),
        );
        ca_gmres_ft_with_tuner(mg, a, b, &cfg, Some(&mut tuner))
    } else {
        ca_gmres_ft_with_tuner(mg, a, b, &cfg, None)
    }
}

#[test]
fn armed_autotune_is_bit_invisible_on_a_healthy_machine() {
    // zero-rate plan: every health EWMA stays exactly 1.0, the Retuner's
    // fast path returns None, and the tuned run must replay the untuned
    // run bit for bit
    let (a, b) = problem();
    let plain = run(&a, &b, Some(FaultPlan::new(5)), false);
    let tuned = run(&a, &b, Some(FaultPlan::new(5)), true);
    assert!(plain.stats.converged && tuned.stats.converged);
    assert_eq!(tuned.report.retunes, 0, "healthy machine must never re-plan");
    assert_eq!(tuned.report.s_final, 5);
    assert_eq!(plain.stats.total_iters, tuned.stats.total_iters);
    assert_eq!(plain.stats.restarts, tuned.stats.restarts);
    assert_eq!(plain.stats.t_total.to_bits(), tuned.stats.t_total.to_bits());
    assert_eq!(plain.stats.comm_msgs, tuned.stats.comm_msgs);
    assert_eq!(plain.stats.comm_bytes, tuned.stats.comm_bytes);
    for (u, v) in plain.x.iter().zip(&tuned.x) {
        assert_eq!(u.to_bits(), v.to_bits());
    }
}

#[test]
fn straggler_triggers_a_different_plan() {
    // a sustained 4x straggler: the retuner must select a different
    // (s, layout) than the healthy configuration and the solve must
    // still converge
    let (a, b) = problem();
    let plan = FaultPlan::new(9).with_slowdown(2, 4.0, 0);
    let healthy = run(&a, &b, None, true);
    let degraded = run(&a, &b, Some(plan), true);
    assert!(healthy.stats.converged && degraded.stats.converged);
    assert_eq!(healthy.report.retunes, 0);
    assert!(degraded.report.retunes > 0, "4x straggler must trigger a re-plan");
    // the new plan differs from the healthy one in s and/or layout; the
    // final layout must shrink the straggler's share below an even split
    let even = a.nrows() / NDEV;
    let changed_s = degraded.report.s_final != healthy.report.s_final;
    let starts = &degraded.report.layout_final;
    let straggler_rows = starts[3] - starts[2];
    assert!(
        changed_s || straggler_rows < even,
        "re-plan changed nothing: s {} rows {}",
        degraded.report.s_final,
        straggler_rows
    );
    // fail-slow is clock-only, so the tuned degraded run still reaches
    // the same tolerance
    let mut r = vec![0.0; a.nrows()];
    ca_gmres_repro::sparse::spmv::spmv(&a, &degraded.x, &mut r);
    let nrm = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>().sqrt();
    for i in 0..a.nrows() {
        r[i] = b[i] - r[i];
    }
    assert!(nrm(&r) / nrm(&b) <= 1e-8 * 1.01);
}

#[test]
fn retuned_run_beats_the_static_run_under_a_straggler() {
    // time-to-solution: re-planning must recover part of what the
    // straggler costs a static run
    let (a, b) = problem();
    let plan = FaultPlan::new(9).with_slowdown(2, 4.0, 0);
    let stat = run(&a, &b, Some(plan.clone()), false);
    let tuned = run(&a, &b, Some(plan), true);
    assert!(stat.stats.converged && tuned.stats.converged);
    assert!(tuned.report.retunes > 0);
    assert!(
        tuned.stats.t_total < stat.stats.t_total,
        "re-planned {:.3e}s vs static {:.3e}s",
        tuned.stats.t_total,
        stat.stats.t_total
    );
}
