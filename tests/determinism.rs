#![allow(clippy::needless_range_loop)]

//! Determinism and device-count invariance of the whole stack — critical
//! for a simulator whose claims rest on reproducible clocks.

use ca_gmres_repro::gmres::prelude::*;
use ca_gmres_repro::gpusim::{Cmd, FaultPlan, MultiGpu, Schedule, SdcTargets};
use ca_gmres_repro::sparse::{gen, perm};

fn solve_once(ndev: usize, s: usize) -> (Vec<f64>, f64, u64, usize) {
    let a = gen::convection_diffusion(14, 14, 1.5);
    let (a_ord, p, layout) = prepare(&a, Ordering::Kway, ndev);
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| ((i * 31 % 17) as f64) - 8.0).collect();
    let mut mg = MultiGpu::with_defaults(ndev);
    let cfg = CaGmresConfig { s, m: 24, rtol: 1e-9, max_restarts: 300, ..Default::default() };
    let sys = System::new(&mut mg, &a_ord, layout, cfg.m, Some(s)).unwrap();
    sys.load_rhs(&mut mg, &perm::permute_vec(&b, &p)).unwrap();
    let out = ca_gmres(&mut mg, &sys, &cfg);
    assert!(out.stats.converged);
    let x = perm::unpermute_vec(&sys.download_x(&mut mg).unwrap(), &p);
    (x, out.stats.t_total, out.stats.comm_msgs, out.stats.total_iters)
}

#[test]
fn repeated_solves_are_bitwise_identical() {
    let (x1, t1, m1, i1) = solve_once(3, 6);
    let (x2, t2, m2, i2) = solve_once(3, 6);
    assert_eq!(x1, x2, "solutions must be bitwise identical");
    assert_eq!(t1, t2, "simulated clocks must be deterministic");
    assert_eq!(m1, m2);
    assert_eq!(i1, i2);
}

#[test]
fn simulated_time_independent_of_thread_scheduling() {
    // run under different rayon parallelism by re-running; device clocks
    // are computed analytically so wall-clock jitter must not leak in
    let times: Vec<f64> = (0..3).map(|_| solve_once(2, 4).1).collect();
    assert!(times.windows(2).all(|w| w[0] == w[1]), "{times:?}");
}

#[test]
fn gmres_iteration_path_invariant_across_device_counts() {
    // block-row split does not change per-row summation order, so the
    // Krylov process is identical for 1, 2, 3 devices with natural order
    let a = gen::laplace2d(12, 12);
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).sin()).collect();
    let mut results = Vec::new();
    for ndev in 1..=3usize {
        let (a_ord, p, layout) = prepare(&a, Ordering::Natural, ndev);
        let mut mg = MultiGpu::with_defaults(ndev);
        let sys = System::new(&mut mg, &a_ord, layout, 20, None).unwrap();
        sys.load_rhs(&mut mg, &perm::permute_vec(&b, &p)).unwrap();
        let out = gmres(
            &mut mg,
            &sys,
            &GmresConfig { m: 20, orth: BorthKind::Mgs, rtol: 1e-8, max_restarts: 200 },
        );
        assert!(out.stats.converged);
        results.push((
            out.stats.total_iters,
            perm::unpermute_vec(&sys.download_x(&mut mg).unwrap(), &p),
        ));
    }
    for w in results.windows(2) {
        assert_eq!(w[0].0, w[1].0, "iteration counts must match across device counts");
        for i in 0..n {
            assert!((w[0].1[i] - w[1].1[i]).abs() < 1e-8);
        }
    }
}

#[test]
fn more_devices_never_slow_down_large_spmv() {
    // weak sanity on the cost model: a bandwidth-bound SpMV-heavy workload
    // gets faster (simulated) with more devices
    let a = gen::cantilever(10, 10, 10);
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| ((i % 23) as f64) - 11.0).collect();
    let mut last = f64::INFINITY;
    for ndev in 1..=3usize {
        let (a_ord, p, layout) = prepare(&a, Ordering::Natural, ndev);
        let mut mg = MultiGpu::with_defaults(ndev);
        let sys = System::new(&mut mg, &a_ord, layout, 30, None).unwrap();
        sys.load_rhs(&mut mg, &perm::permute_vec(&b, &p)).unwrap();
        let out = gmres(
            &mut mg,
            &sys,
            &GmresConfig { m: 30, orth: BorthKind::Cgs, rtol: 0.0, max_restarts: 2 },
        );
        assert!(
            out.stats.t_total < last * 1.02,
            "{ndev} devices slower: {} vs {last}",
            out.stats.t_total
        );
        last = out.stats.t_total;
    }
}

#[test]
fn mem_accounting_grows_with_s() {
    use ca_gmres_repro::gmres::mpk::{MpkPlan, MpkState};
    let a = gen::laplace2d(20, 20);
    let layout = Layout::even(a.nrows(), 2);
    let mut prev = 0usize;
    for s in [1usize, 3, 6] {
        let mut mg = MultiGpu::with_defaults(2);
        let _st = MpkState::load(&mut mg, &a, MpkPlan::new(&a, &layout, s)).unwrap();
        let used: usize = (0..2).map(|d| mg.device(d).mem_used()).sum();
        assert!(used > prev, "memory must grow with s");
        prev = used;
    }
}

/// Run the full CA-GMRES solve with an optional fault plan installed and
/// return everything observable: solution bits, clock bits, counters.
fn solve_with_plan(plan: Option<FaultPlan>) -> (Vec<u64>, u64, u64, u64, usize) {
    let a = gen::convection_diffusion(14, 14, 1.5);
    let (a_ord, p, layout) = prepare(&a, Ordering::Kway, 3);
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| ((i * 31 % 17) as f64) - 8.0).collect();
    let mut mg = MultiGpu::with_defaults(3);
    if let Some(plan) = plan {
        mg.set_fault_plan(plan);
    }
    let cfg = CaGmresConfig { s: 6, m: 24, rtol: 1e-9, max_restarts: 300, ..Default::default() };
    let sys = System::new(&mut mg, &a_ord, layout, cfg.m, Some(cfg.s)).unwrap();
    sys.load_rhs(&mut mg, &perm::permute_vec(&b, &p)).unwrap();
    let out = ca_gmres(&mut mg, &sys, &cfg);
    assert!(out.stats.converged);
    let x = perm::unpermute_vec(&sys.download_x(&mut mg).unwrap(), &p);
    (
        x.iter().map(|v| v.to_bits()).collect(),
        out.stats.t_total.to_bits(),
        out.stats.comm_msgs,
        out.stats.comm_bytes,
        out.stats.total_iters,
    )
}

/// Property (fault-injection substrate): a plan with every rate at zero is
/// observationally identical to running with no plan installed — same
/// solution bits, same simulated clock bits, same traffic counters.
#[test]
fn zero_rate_fault_plan_is_bit_identical_to_baseline() {
    let baseline = solve_with_plan(None);
    // several seeds: the seed must be irrelevant when no fault can fire
    for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
        let zeroed = solve_with_plan(Some(FaultPlan::new(seed)));
        assert_eq!(baseline, zeroed, "seed {seed} perturbed a zero-rate run");
    }
    // rate-0 SDC with all targets enabled is still a zero-rate plan
    let explicit = solve_with_plan(Some(
        FaultPlan::new(7).with_sdc(0.0, SdcTargets::all()).with_transfer_faults(0.0),
    ));
    assert_eq!(baseline, explicit);
}

/// Event-driven CA-GMRES under a fault plan, with per-device command
/// traces recorded: everything observable, including the scheduled queues.
#[allow(clippy::type_complexity)]
fn solve_event_driven_traced() -> (Vec<u64>, u64, u64, u64, usize, Vec<Vec<Cmd>>) {
    let a = gen::convection_diffusion(14, 14, 1.5);
    let (a_ord, p, layout) = prepare(&a, Ordering::Kway, 3);
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| ((i * 31 % 17) as f64) - 8.0).collect();
    let mut mg = MultiGpu::with_defaults(3);
    mg.set_schedule(Schedule::EventDriven);
    mg.set_fault_plan(FaultPlan::new(1234).with_transfer_faults(0.02));
    mg.enable_trace();
    let cfg = CaGmresConfig { s: 6, m: 24, rtol: 1e-9, max_restarts: 300, ..Default::default() };
    let sys = System::new(&mut mg, &a_ord, layout, cfg.m, Some(cfg.s)).unwrap();
    sys.load_rhs(&mut mg, &perm::permute_vec(&b, &p)).unwrap();
    let out = ca_gmres(&mut mg, &sys, &cfg);
    let x = perm::unpermute_vec(&sys.download_x(&mut mg).unwrap(), &p);
    (
        x.iter().map(|v| v.to_bits()).collect(),
        out.stats.t_total.to_bits(),
        out.stats.comm_msgs,
        out.stats.comm_bytes,
        out.stats.total_iters,
        mg.take_traces(),
    )
}

/// The full CA-GMRES solve, optionally under a `ca-obs` recording session
/// with device command tracing — the maximal instrumentation load.
#[allow(clippy::type_complexity)]
fn solve_maybe_instrumented(instrument: bool) -> (Vec<u64>, [u64; 5], u64, u64, usize) {
    use ca_gmres_repro::gpusim::obs_ingest_traces;
    use ca_gmres_repro::obs;
    let a = gen::convection_diffusion(14, 14, 1.5);
    let (a_ord, p, layout) = prepare(&a, Ordering::Kway, 3);
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| ((i * 31 % 17) as f64) - 8.0).collect();
    let mut mg = MultiGpu::with_defaults(3);
    if instrument {
        obs::start();
        mg.enable_trace();
    }
    let cfg = CaGmresConfig { s: 6, m: 24, rtol: 1e-9, max_restarts: 300, ..Default::default() };
    let sys = System::new(&mut mg, &a_ord, layout, cfg.m, Some(cfg.s)).unwrap();
    sys.load_rhs(&mut mg, &perm::permute_vec(&b, &p)).unwrap();
    let out = ca_gmres(&mut mg, &sys, &cfg);
    assert!(out.stats.converged);
    let x = perm::unpermute_vec(&sys.download_x(&mut mg).unwrap(), &p);
    if instrument {
        obs_ingest_traces(&mg.take_traces());
        let rec = obs::finish();
        assert!(!rec.is_empty(), "instrumented run must actually record");
        rec.check_well_nested().unwrap_or_else(|e| panic!("not well-nested: {e}"));
    }
    let s = &out.stats;
    (
        x.iter().map(|v| v.to_bits()).collect(),
        [
            s.t_total.to_bits(),
            s.t_spmv.to_bits(),
            s.t_orth.to_bits(),
            s.t_tsqr.to_bits(),
            s.t_small.to_bits(),
        ],
        s.comm_msgs,
        s.comm_bytes,
        s.total_iters,
    )
}

/// Property (observability layer): recording is pure observation. A solve
/// under a full obs session — host spans, metric registry, device command
/// tracing, post-hoc trace ingestion — is bit-identical to the same solve
/// with no recorder attached: same solution bits, same clock bits for
/// every phase bucket, same traffic counters, same iteration count.
#[test]
fn instrumented_run_is_bit_identical_to_uninstrumented() {
    let plain = solve_maybe_instrumented(false);
    let recorded = solve_maybe_instrumented(true);
    assert_eq!(plain.0, recorded.0, "recording perturbed the solution bits");
    assert_eq!(plain.1, recorded.1, "recording perturbed the simulated phase clocks");
    assert_eq!(
        (plain.2, plain.3, plain.4),
        (recorded.2, recorded.3, recorded.4),
        "recording perturbed traffic or iteration counters"
    );
}

/// Property (scalar-generic refactor): the f64 instantiation of the
/// generic kernel stack is bit-identical to the pre-refactor pure-f64
/// code. The golden digests below were recorded on the commit *before*
/// the `Scalar` trait was threaded through the kernels; any change to
/// them means the refactor altered f64 arithmetic or the cost model,
/// which the ISSUE forbids.
#[test]
fn f64_generic_stack_matches_pre_refactor_golden_digests() {
    // byte-wise FNV-1a over the little-endian solution bits
    fn fnv(words: &[u64]) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for w in words {
            for b in w.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        h
    }
    let (xbits, t_bits, msgs, bytes, iters) = solve_with_plan(None);
    let x_hash = fnv(&xbits);
    assert_eq!(x_hash, 0xf9b6833b480543f7, "solution bits drifted from the pre-refactor stack");
    assert_eq!(t_bits, 0x3f78c385be1dade6, "simulated clock drifted from the pre-refactor stack");
    assert_eq!(msgs, 600, "message count drifted from the pre-refactor stack");
    assert_eq!(bytes, 96360, "traffic bytes drifted from the pre-refactor stack");
    assert_eq!(iters, 66, "iteration path drifted from the pre-refactor stack");
}

/// The mixed-precision driver (f32 basis + f64 refinement) with
/// everything observable: solution bits, clock bits, counters including
/// the f32-tagged byte lanes.
#[allow(clippy::type_complexity)]
fn solve_mixed_once() -> (Vec<u64>, u64, u64, u64, u64, usize, bool) {
    use ca_gmres_repro::gmres::mpk::SpmvFormat;
    use ca_gmres_repro::scalar::Precision;
    let a = gen::convection_diffusion(14, 14, 1.5);
    let (a_ord, p, layout) = prepare(&a, Ordering::Kway, 3);
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| ((i * 31 % 17) as f64) - 8.0).collect();
    let mut mg = MultiGpu::with_defaults(3);
    let cfg = CaGmresConfig {
        s: 6,
        m: 24,
        rtol: 1e-9,
        max_restarts: 300,
        mpk_prec: Precision::F32,
        ..Default::default()
    };
    let out =
        ca_gmres_mixed(&mut mg, &a_ord, &perm::permute_vec(&b, &p), layout, &cfg, SpmvFormat::Ell)
            .unwrap();
    assert!(out.stats.converged);
    let counters = mg.counters();
    assert!(counters.total_bytes_f32() > 0, "mixed run must move f32-tagged halo bytes");
    let x = perm::unpermute_vec(&out.x, &p);
    (
        x.iter().map(|v| v.to_bits()).collect(),
        out.stats.t_total.to_bits(),
        out.stats.comm_msgs,
        out.stats.comm_bytes,
        counters.total_bytes_f32(),
        out.stats.total_iters,
        out.escalated,
    )
}

/// Property (mixed precision): the f32-basis solve is as deterministic as
/// the f64 one — repeated runs are bitwise identical in solution, clocks,
/// and every counter, including the precision-labelled byte lanes. The CI
/// determinism matrix re-runs this whole suite under different
/// `RAYON_NUM_THREADS`, so the same assertion also pins thread-count
/// independence.
#[test]
fn mixed_precision_solve_is_bitwise_reproducible() {
    let r1 = solve_mixed_once();
    let r2 = solve_mixed_once();
    assert!(!r1.6, "well-conditioned Newton basis must not escalate");
    assert_eq!(r1, r2, "mixed-precision replay diverged");
}

/// The fault-tolerant driver on a healthy machine, with an optional
/// numerical-health ladder armed. Returns everything observable plus the
/// monitor's own activity counters.
#[allow(clippy::type_complexity)]
fn solve_ft_with_ladder(ladder: Option<Ladder>) -> ((Vec<u64>, u64, u64, u64, usize), u64, usize) {
    let a = gen::convection_diffusion(14, 14, 1.5);
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| ((i * 31 % 17) as f64) - 8.0).collect();
    let mut cfg = FtConfig { ladder, ..Default::default() };
    cfg.solver.s = 6;
    cfg.solver.m = 24;
    cfg.solver.rtol = 1e-9;
    cfg.solver.max_restarts = 300;
    let mg = MultiGpu::with_defaults(3);
    let out = ca_gmres_ft(mg, &a, &b, &cfg);
    assert!(out.stats.converged);
    (
        (
            out.x.iter().map(|v| v.to_bits()).collect(),
            out.stats.t_total.to_bits(),
            out.stats.comm_msgs,
            out.stats.comm_bytes,
            out.stats.total_iters,
        ),
        out.report.cond_checks,
        out.report.escalations.len(),
    )
}

/// Property (numerical-health monitor): arming the basis-condition
/// monitor and the full escalation ladder on a healthy solve is
/// bit-invisible — same solution bits, same simulated clock bits, same
/// traffic counters — because the monitor reads only host-resident TSQR
/// factors and uncharged checkpoint-style block norms. The armed run
/// must nonetheless *observe* (condition records accumulate) while
/// escalating exactly zero times.
#[test]
fn armed_ladder_on_healthy_run_is_bit_invisible() {
    let (plain, plain_checks, _) = solve_ft_with_ladder(None);
    let (armed, armed_checks, escalations) = solve_ft_with_ladder(Some(Ladder::default()));
    assert_eq!(plain_checks, 0, "disarmed run must not record condition estimates");
    assert!(armed_checks > 0, "armed monitor never recorded a condition estimate");
    assert_eq!(escalations, 0, "healthy run must not escalate");
    assert_eq!(plain.0, armed.0, "armed monitor perturbed the solution bits");
    assert_eq!(plain.1, armed.1, "armed monitor perturbed the simulated clock");
    assert_eq!(
        (plain.2, plain.3, plain.4),
        (armed.2, armed.3, armed.4),
        "armed monitor perturbed traffic or iteration counters"
    );
}

/// Property (stream executor): replaying the queues with the same
/// `FaultPlan` seed is bit-identical — same solution bits, same clock
/// bits, same counters, and command-for-command identical per-device
/// traces (timestamps included).
#[test]
fn event_driven_queue_replay_with_fault_plan_is_bit_identical() {
    let r1 = solve_event_driven_traced();
    let r2 = solve_event_driven_traced();
    assert_eq!(r1.0, r2.0, "solution bits diverged across replays");
    assert_eq!(r1.1, r2.1, "simulated clock bits diverged across replays");
    assert_eq!((r1.2, r1.3, r1.4), (r2.2, r2.3, r2.4), "counters diverged");
    assert_eq!(r1.5.len(), r2.5.len());
    assert!(r1.5.iter().all(|t| !t.is_empty()), "traces must be non-trivial");
    assert!(r1.5 == r2.5, "per-device command traces diverged across replays");
}
