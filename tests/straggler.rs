//! Fail-slow fault model properties: performance faults perturb *clocks*,
//! never arithmetic; neutral plans are bit-invisible; and the health-driven
//! rebalancer is exactly inert when the machine is healthy.

use ca_gmres_repro::gmres::prelude::*;
use ca_gmres_repro::gpusim::{FaultPlan, MultiGpu};
use ca_gmres_repro::sparse::{gen, perm};

fn solve_with_plan(plan: Option<FaultPlan>) -> (Vec<f64>, SolveStats) {
    let a = gen::convection_diffusion(14, 14, 1.5);
    let (a_ord, p, layout) = prepare(&a, Ordering::Kway, 3);
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| ((i * 31 % 17) as f64) - 8.0).collect();
    let mut mg = MultiGpu::with_defaults(3);
    if let Some(plan) = plan {
        mg.set_fault_plan(plan);
    }
    let cfg = CaGmresConfig { s: 6, m: 24, rtol: 1e-9, max_restarts: 300, ..Default::default() };
    let sys = System::new(&mut mg, &a_ord, layout, cfg.m, Some(cfg.s)).unwrap();
    sys.load_rhs(&mut mg, &perm::permute_vec(&b, &p)).unwrap();
    let out = ca_gmres(&mut mg, &sys, &cfg);
    assert!(out.stats.converged);
    let x = perm::unpermute_vec(&sys.download_x(&mut mg).unwrap(), &p);
    (x, out.stats)
}

#[test]
fn zero_rate_perf_plan_is_bit_invisible() {
    // unit-factor slowdown, unit-factor link degrade, zero-rate stalls:
    // iterates, residuals, clocks, and PCIe counters must all match the
    // no-plan run bit for bit
    let neutral = FaultPlan::new(42)
        .with_slowdown(1, 1.0, 0)
        .with_link_degrade(2, 1.0)
        .with_stalls(0, 0.0, 5.0);
    let (x0, s0) = solve_with_plan(None);
    let (x1, s1) = solve_with_plan(Some(neutral));
    for (u, v) in x0.iter().zip(&x1) {
        assert_eq!(u.to_bits(), v.to_bits());
    }
    assert_eq!(s0.final_relres.to_bits(), s1.final_relres.to_bits());
    assert_eq!(s0.t_total.to_bits(), s1.t_total.to_bits());
    assert_eq!(s0.comm_msgs, s1.comm_msgs);
    assert_eq!(s0.comm_bytes, s1.comm_bytes);
    assert_eq!(s0.total_iters, s1.total_iters);
    for (u, v) in s0.device_busy_s.iter().zip(&s1.device_busy_s) {
        assert_eq!(u.to_bits(), v.to_bits());
    }
}

#[test]
fn slowdown_stretches_clock_without_touching_iterates() {
    let (x0, s0) = solve_with_plan(None);
    let (x1, s1) = solve_with_plan(Some(FaultPlan::new(7).with_slowdown(1, 4.0, 0)));
    for (u, v) in x0.iter().zip(&x1) {
        assert_eq!(u.to_bits(), v.to_bits(), "slowdown must be clock-only");
    }
    assert_eq!(s0.total_iters, s1.total_iters);
    assert!(s1.t_total > s0.t_total, "a 4x straggler must cost simulated time");
    assert!(s1.device_imbalance > 2.0, "busy-time imbalance must expose the straggler");
    assert!(s0.device_imbalance < 1.5);
}

#[test]
fn rebalancing_is_identical_to_static_without_faults() {
    // with a zero-fault plan the health imbalance is exactly 1.0, so the
    // rebalanced solve must replay the static one bit for bit
    let a = gen::laplace2d(13, 13);
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos()).collect();
    let solver = CaGmresConfig { s: 5, m: 20, rtol: 1e-8, max_restarts: 300, ..Default::default() };
    let run = |rebalance: bool| {
        let mut mg = MultiGpu::with_defaults(3);
        mg.set_fault_plan(FaultPlan::new(3)); // all rates zero
        let cfg =
            FtConfig { solver, rebalance, watchdog_timeout_s: Some(1.0), ..Default::default() };
        ca_gmres_ft(mg, &a, &b, &cfg)
    };
    let stat = run(false);
    let reb = run(true);
    assert!(stat.stats.converged && reb.stats.converged);
    assert_eq!(reb.report.rebalances, 0);
    assert_eq!(reb.report.hung_device, None);
    assert_eq!(stat.stats.total_iters, reb.stats.total_iters);
    assert_eq!(stat.stats.restarts, reb.stats.restarts);
    assert_eq!(stat.stats.t_total.to_bits(), reb.stats.t_total.to_bits());
    for (u, v) in stat.x.iter().zip(&reb.x) {
        assert_eq!(u.to_bits(), v.to_bits());
    }
}

#[test]
fn watchdog_plus_rebalance_survive_a_stalling_device() {
    // intermittent long stalls: the watchdog declares the device hung,
    // the solve degrades onto the survivors and still converges
    let a = gen::laplace2d(13, 13);
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 7) % 5) as f64).collect();
    let mut mg = MultiGpu::with_defaults(3);
    mg.set_fault_plan(FaultPlan::new(17).with_stalls(2, 1.0, 10.0));
    let cfg = FtConfig {
        solver: CaGmresConfig { s: 5, m: 20, rtol: 1e-8, max_restarts: 300, ..Default::default() },
        rebalance: true,
        watchdog_timeout_s: Some(0.5),
        ..Default::default()
    };
    let out = ca_gmres_ft(mg, &a, &b, &cfg);
    assert!(out.stats.converged, "{:?}", out.stats.breakdown);
    assert_eq!(out.report.hung_device, Some(2));
    assert!(out.report.degraded);
    assert_eq!(out.report.ndev_final, 2);
    let mut r = vec![0.0; n];
    ca_gmres_repro::sparse::spmv::spmv(&a, &out.x, &mut r);
    let nrm = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>().sqrt();
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    assert!(nrm(&r) / nrm(&b) <= 1e-8 * 1.01);
}
