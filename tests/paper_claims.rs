#![allow(clippy::needless_range_loop)]

//! Direct tests of the paper's headline claims on the simulated substrate.

use ca_gmres_repro::gmres::layout::Layout;
use ca_gmres_repro::gmres::mpk::MpkPlan;
use ca_gmres_repro::gmres::newton::BasisSpec;
use ca_gmres_repro::gmres::prelude::*;
use ca_gmres_repro::gpusim::MultiGpu;
use ca_gmres_repro::sparse::{balance, gen, perm};

fn flat_rhs(n: usize) -> Vec<f64> {
    let mut state = 0x2545F4914F6CDD1Du64;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
        .collect()
}

/// §III/IV claim: MPK "communicates no more than a single GMRES iteration
/// (plus a lower-order term), but accomplishes the work of s iterations" —
/// the number of communication *phases* per basis vector drops by s.
#[test]
fn mpk_reduces_message_count_by_factor_s() {
    let a = gen::laplace2d(16, 16);
    let layout = Layout::even(a.nrows(), 3);
    for s in [2usize, 4, 8] {
        let plan = MpkPlan::new(&a, &layout, s);
        let p1 = MpkPlan::new(&a, &layout, 1);
        // per m vectors: blocks = m/s exchanges vs m exchanges
        let m = 40;
        assert_eq!(m / s * 2, m.div_ceil(s) * 2 * s / s); // sanity on arithmetic
        let blocks = m.div_ceil(s);
        assert!(blocks * 2 < m * 2, "s = {s} must reduce exchange phases");
        // and the per-block volume grows sublinearly vs s * spmv volume
        let (g, sc) = plan.comm_volume_per_block();
        let (g1, s1) = p1.comm_volume_per_block();
        assert!(g + sc <= s * (g1 + s1), "volume per block bounded by s x spmv");
    }
}

/// §IV-B claim: "for larger value of s ... in comparison to SpMV, MPK
/// required a greater total communication volume over the m iterations" —
/// on matrices whose boundary sets grow superlinearly (the circuit
/// analog). The same section notes that with *linear* growth (a banded
/// grid) the volume "will stay constant or even decrease with s"; both
/// behaviours are asserted.
#[test]
fn mpk_total_volume_vs_spmv_depends_on_growth() {
    let m = 96;
    // superlinear early growth on the irregular circuit: the *scatter*
    // term sum_d |delta^(d,1:s)| more than doubles from s = 1 to s = 2
    // (at paper scale this is what makes MPK's total volume exceed
    // SpMV's; our smaller analog saturates its gather union early, so we
    // assert the mechanism rather than the large-n outcome)
    let a = gen::circuit(4000, 9);
    let (a_ord, _, layout) = prepare(&a, Ordering::Kway, 3);
    let (_, sc1) = MpkPlan::new(&a_ord, &layout, 1).comm_volume_per_block();
    let (_, sc2) = MpkPlan::new(&a_ord, &layout, 2).comm_volume_per_block();
    assert!(sc2 > 2 * sc1, "circuit scatter growth not superlinear: {sc2} vs 2x{sc1}");

    // linear growth: 2-D grid band — volume roughly flat in s
    let g = gen::laplace2d(24, 24);
    let gl = Layout::even(g.nrows(), 3);
    let gv1 = MpkPlan::new(&g, &gl, 1).comm_volume_total(m);
    let gv8 = MpkPlan::new(&g, &gl, 8).comm_volume_total(m);
    assert!(
        (gv8 as f64) < 1.5 * gv1 as f64,
        "grid: volume should stay near-constant: {gv8} vs {gv1}"
    );
}

/// §V-C claim: CholQR fails on ill-conditioned bases (monomial, larger s)
/// where the Newton basis survives.
#[test]
fn monomial_breaks_cholqr_newton_rescues() {
    let a = gen::laplace2d(20, 20);
    let (ab, _) = balance::balance(&a);
    let (a_ord, p, layout) = prepare(&ab, Ordering::Natural, 2);
    let b = perm::permute_vec(&flat_rhs(400), &p);
    let run = |basis: BasisChoice| {
        let mut mg = MultiGpu::with_defaults(2);
        let cfg = CaGmresConfig {
            s: 24,
            m: 48,
            basis,
            orth: OrthConfig { tsqr: TsqrKind::CholQr, ..Default::default() },
            rtol: 0.0,
            max_restarts: 6,
            ..Default::default()
        };
        let sys = System::new(&mut mg, &a_ord, layout.clone(), cfg.m, Some(cfg.s)).unwrap();
        sys.load_rhs(&mut mg, &b).unwrap();
        ca_gmres(&mut mg, &sys, &cfg)
    };
    let mono = run(BasisChoice::Monomial);
    let newton = run(BasisChoice::Newton);
    assert!(
        mono.stats.breakdown.is_some(),
        "monomial basis at s = 24 must break CholQR (got {} restarts)",
        mono.stats.restarts
    );
    assert!(
        newton.stats.breakdown.is_none(),
        "Newton basis must survive: {:?}",
        newton.stats.breakdown
    );
}

/// §IV-A claim: Leja-ordered Newton shifts keep the basis condition number
/// orders of magnitude below the monomial basis.
#[test]
fn newton_gram_condition_far_below_monomial() {
    let a = gen::circuit(3000, 11);
    let (ab, _) = balance::balance(&a);
    let (a_ord, p, layout) = prepare(&ab, Ordering::Kway, 1);
    let b = perm::permute_vec(&flat_rhs(3000), &p);
    let s = 12;
    let mut mg = MultiGpu::with_defaults(1);
    let sys = System::new(&mut mg, &a_ord, layout, 24, Some(s)).unwrap();
    sys.load_rhs(&mut mg, &b).unwrap();
    let kappa_mono = ca_gmres_repro::gmres::cagmres::probe_gram_condition(
        &mut mg,
        &sys,
        &BasisSpec::monomial(s),
    )
    .unwrap();
    let out = gmres(
        &mut mg,
        &sys,
        &GmresConfig { m: 24, rtol: 1e-30, max_restarts: 1, ..Default::default() },
    );
    let shifts = ca_gmres_repro::gmres::newton::newton_shifts_from_hessenberg(
        &out.first_hessenberg.unwrap(),
        s,
    )
    .unwrap();
    sys.load_rhs(&mut mg, &b).unwrap();
    let kappa_newton = ca_gmres_repro::gmres::cagmres::probe_gram_condition(
        &mut mg,
        &sys,
        &BasisSpec::newton(&shifts, s),
    )
    .unwrap();
    assert!(
        kappa_newton * 100.0 < kappa_mono,
        "kappa Newton {kappa_newton:e} not well below monomial {kappa_mono:e}"
    );
}

/// Fig. 10 claim: communication phases per TSQR — MGS (s+1)(s+2),
/// CholQR/SVQR/CAQR exactly one reduce + one broadcast.
#[test]
fn tsqr_message_phases_match_fig10() {
    use ca_gmres_repro::gmres::orth::tsqr;
    let k = 6usize;
    let ndev = 2usize;
    let phases = |kind| {
        let mut mg = MultiGpu::with_defaults(ndev);
        let ids: Vec<ca_gmres_repro::gpusim::MatId> = (0..ndev)
            .map(|d| {
                let dev = mg.device_mut(d);
                let v = dev.alloc_mat(50, k).unwrap();
                let mut st = (d as u64 + 3).wrapping_mul(0x9E3779B97F4A7C15);
                for j in 0..k {
                    let col: Vec<f64> = (0..50)
                        .map(|_| {
                            st = st.wrapping_mul(6364136223846793005).wrapping_add(1);
                            ((st >> 11) as f64 / (1u64 << 53) as f64) - 0.5
                        })
                        .collect();
                    dev.mat_mut(v).set_col(j, &col);
                }
                v
            })
            .collect();
        mg.reset_counters();
        tsqr(&mut mg, &ids, 0, k, kind, true).unwrap();
        let c = mg.counters();
        (c.msgs_to_host / ndev as u64, c.msgs_to_dev / ndev as u64)
    };
    // MGS: (k)(k+1)/2 reduce+bcast pairs
    let (up, down) = phases(TsqrKind::Mgs);
    assert_eq!(up, (k * (k + 1) / 2) as u64);
    assert_eq!(down, up);
    for kind in [TsqrKind::CholQr, TsqrKind::SvQr, TsqrKind::Caqr] {
        let (up, down) = phases(kind);
        assert_eq!(up, 1, "{kind}");
        assert_eq!(down, 1, "{kind}");
    }
}

/// §VI claim: CA-GMRES(s>1) shortens the orthogonalization time per
/// restart loop versus GMRES on the same device count.
#[test]
fn ca_gmres_orthogonalization_speedup() {
    let a = gen::circuit(20_000, 19);
    let (ab, _) = balance::balance(&a);
    let (a_ord, p, layout) = prepare(&ab, Ordering::Kway, 3);
    let b = perm::permute_vec(&flat_rhs(20_000), &p);

    let mut mg1 = MultiGpu::with_defaults(3);
    let sys1 = System::new(&mut mg1, &a_ord, layout.clone(), 30, None).unwrap();
    sys1.load_rhs(&mut mg1, &b).unwrap();
    let g = gmres(
        &mut mg1,
        &sys1,
        &GmresConfig { m: 30, orth: BorthKind::Cgs, rtol: 0.0, max_restarts: 2 },
    );

    let mut mg2 = MultiGpu::with_defaults(3);
    let cfg = CaGmresConfig { s: 15, m: 30, rtol: 0.0, max_restarts: 3, ..Default::default() };
    let sys2 = System::new(&mut mg2, &a_ord, layout, 30, Some(15)).unwrap();
    sys2.load_rhs(&mut mg2, &b).unwrap();
    let c = ca_gmres(&mut mg2, &sys2, &cfg);

    let g_orth = g.stats.t_orth / g.stats.restarts as f64;
    let c_orth = c.ca_stats.t_orth / c.ca_stats.restarts as f64;
    assert!(
        c_orth < g_orth / 1.5,
        "CA orth {:.3}ms not well below GMRES {:.3}ms",
        1e3 * c_orth,
        1e3 * g_orth
    );
}

/// §VI-B claim: CA-GMRES with s = 1 is slower than GMRES because the block
/// kernels are inefficient at width one.
#[test]
fn ca_gmres_s1_slower_than_gmres() {
    let a = gen::circuit(20_000, 19);
    let (ab, _) = balance::balance(&a);
    let (a_ord, p, layout) = prepare(&ab, Ordering::Kway, 1);
    let b = perm::permute_vec(&flat_rhs(20_000), &p);

    let mut mg1 = MultiGpu::with_defaults(1);
    let sys1 = System::new(&mut mg1, &a_ord, layout.clone(), 30, None).unwrap();
    sys1.load_rhs(&mut mg1, &b).unwrap();
    let g = gmres(
        &mut mg1,
        &sys1,
        &GmresConfig { m: 30, orth: BorthKind::Cgs, rtol: 0.0, max_restarts: 2 },
    );

    let mut mg2 = MultiGpu::with_defaults(1);
    let cfg = CaGmresConfig { s: 1, m: 30, rtol: 0.0, max_restarts: 3, ..Default::default() };
    let sys2 = System::new(&mut mg2, &a_ord, layout, 30, Some(1)).unwrap();
    sys2.load_rhs(&mut mg2, &b).unwrap();
    let c = ca_gmres(&mut mg2, &sys2, &cfg);

    let g_t = g.stats.t_total / g.stats.restarts as f64;
    let c_t = c.ca_stats.t_total / c.ca_stats.restarts as f64;
    assert!(c_t > g_t, "CA-GMRES(1) {:.3}ms should exceed GMRES {:.3}ms", 1e3 * c_t, 1e3 * g_t);
}

/// Restart-count agreement: with the balanced matrix, CA-GMRES needs about
/// the same number of restarts as GMRES (the paper: "CA-GMRES and GMRES
/// needed about the same number of restarts").
#[test]
fn restart_counts_comparable() {
    let a = gen::circuit(8000, 5);
    let (ab, _) = balance::balance(&a);
    let (a_ord, p, layout) = prepare(&ab, Ordering::Kway, 2);
    let b = perm::permute_vec(&flat_rhs(8000), &p);

    let mut mg1 = MultiGpu::with_defaults(2);
    let sys1 = System::new(&mut mg1, &a_ord, layout.clone(), 30, None).unwrap();
    sys1.load_rhs(&mut mg1, &b).unwrap();
    let g = gmres(
        &mut mg1,
        &sys1,
        &GmresConfig { m: 30, orth: BorthKind::Cgs, rtol: 1e-8, max_restarts: 500 },
    );
    let mut mg2 = MultiGpu::with_defaults(2);
    let cfg = CaGmresConfig { s: 10, m: 30, rtol: 1e-8, max_restarts: 500, ..Default::default() };
    let sys2 = System::new(&mut mg2, &a_ord, layout, 30, Some(10)).unwrap();
    sys2.load_rhs(&mut mg2, &b).unwrap();
    let c = ca_gmres(&mut mg2, &sys2, &cfg);
    assert!(g.stats.converged && c.stats.converged);
    let (rg, rc) = (g.stats.restarts as f64, c.stats.restarts as f64);
    assert!(rc <= rg * 1.5 + 2.0, "CA restarts {rc} vs GMRES {rg}");
}
