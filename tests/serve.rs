//! Service-layer integration contracts: the scheduler wrapped around the
//! fault-tolerant solver must add *nothing* to the arithmetic.
//!
//! Three contracts are pinned here. A single-job service run with zero
//! scheduling overhead replays the direct `ca_gmres_ft_session` solve
//! bit for bit (solution, clocks, solver statistics) — the service is a
//! pure wrapper. Scheduling overhead, when charged, delays completions
//! but never leaks into device time or the solution (the satellite fix:
//! overhead is `advance_host`, never `fast_forward`). And a device loss
//! degrades only the slice it happened on: jobs elsewhere on the pool
//! converge unperturbed while the hit slice recovers through the
//! executor-rebuild path, with the whole faulted run still
//! bit-reproducible.

use ca_gmres_repro::gmres::ft::{ca_gmres_ft_session, FtConfig};
use ca_gmres_repro::gpusim::{FaultPlan, MultiGpu, Schedule};
use ca_gmres_repro::serve::{AdmissionCache, JobRequest, JobStatus, Policy, ServeConfig, Service};
use ca_gmres_repro::sparse::{gen, Csr};

const M: usize = 20;
const RTOL: f64 = 1e-8;
const MAX_RESTARTS: usize = 60;

fn problem() -> (String, Csr) {
    ("lap14".to_string(), gen::laplace2d(14, 14))
}

fn rhs(a: &Csr) -> Vec<f64> {
    (0..a.nrows()).map(|i| 1.0 + ((i * 13) % 7) as f64).collect()
}

fn cfg(slices: Vec<usize>) -> ServeConfig {
    let mut cfg = ServeConfig::new(slices);
    cfg.base.solver.m = M;
    cfg.base.solver.rtol = RTOL;
    cfg.base.solver.max_restarts = MAX_RESTARTS;
    cfg.keep_solutions = true;
    cfg
}

fn job(id: u64, matrix: &str, rhs: Vec<f64>, arrival_s: f64) -> JobRequest {
    JobRequest {
        id,
        tenant: "t".into(),
        matrix: matrix.into(),
        rhs,
        rtol: RTOL,
        arrival_s,
        deadline_s: None,
    }
}

/// Zero-overhead single-job service run vs the direct session call with
/// the same admission-derived configuration on an identically built
/// executor: solution bits, completion clock, and solver stats must all
/// agree exactly.
#[test]
fn single_job_service_matches_direct_solve_bit_for_bit() {
    let (key, a) = problem();
    let b = rhs(&a);
    let ndev = 2;

    let mut scfg = cfg(vec![ndev]);
    scfg.admission_cost_s = 0.0;
    scfg.dispatch_cost_s = 0.0;
    let mut svc = Service::new(scfg.clone(), vec![(key.clone(), a.clone())]);
    let rep = svc.run(vec![job(0, &key, b.clone(), 0.0)]);
    assert_eq!(rep.jobs.len(), 1);
    let j = &rep.jobs[0];
    assert_eq!(j.status, JobStatus::Converged);
    assert_eq!(j.start_s.to_bits(), 0f64.to_bits());

    // The reference arm: same plan, same executor construction.
    let mut adm = AdmissionCache::new(
        scfg.admission_space.clone(),
        scfg.model.clone(),
        scfg.kernel_config,
        M,
        scfg.ewma_alpha,
        scfg.expected_cycles_init,
    );
    let (verdict, _) = adm.lookup(&key, &a, ndev);
    let cand = verdict.expect("class must admit").cand;
    let ftcfg = FtConfig { solver: cand.solver_config(M, RTOL, MAX_RESTARTS), ..scfg.base.clone() };
    let mut mg = MultiGpu::new(ndev, scfg.model.clone(), scfg.kernel_config);
    mg.set_schedule(Schedule::EventDriven);
    let (out, res) = ca_gmres_ft_session(&mut mg, &a, &b, &ftcfg, None, None, false);

    assert_eq!(j.x.as_deref().unwrap().len(), out.x.len());
    for (sx, dx) in j.x.as_deref().unwrap().iter().zip(&out.x) {
        assert_eq!(sx.to_bits(), dx.to_bits());
    }
    assert_eq!(j.done_s.to_bits(), mg.time().to_bits());
    assert_eq!(j.solver_t_total_s.to_bits(), out.stats.t_total.to_bits());
    assert_eq!(j.iters, out.stats.total_iters);
    assert_eq!(j.restarts, out.stats.restarts);
    assert_eq!(j.relres.to_bits(), out.stats.final_relres.to_bits());
    if let Some(r) = res {
        r.release(&mut mg);
    }

    // Golden determinism: a fresh service replays the digest exactly.
    let mut svc2 = Service::new(scfg, vec![(key.clone(), a)]);
    let rep2 = svc2.run(vec![job(0, &key, b, 0.0)]);
    assert_eq!(rep.digest(), rep2.digest());
}

/// Scheduling overhead delays completion on the host clock but never
/// touches the solve: same solution bits, same iteration counts, same
/// device busy time.
#[test]
fn scheduling_overhead_stays_on_the_host_clock() {
    let (key, a) = problem();
    let b = rhs(&a);
    let run = |admission_cost: f64, dispatch_cost: f64| {
        let mut scfg = cfg(vec![2]);
        scfg.admission_cost_s = admission_cost;
        scfg.dispatch_cost_s = dispatch_cost;
        let mut svc = Service::new(scfg, vec![(key.clone(), a.clone())]);
        svc.run(vec![job(0, &key, b.clone(), 0.0)])
    };
    let lean = run(0.0, 0.0);
    let heavy = run(5e-3, 1e-3);
    let (jl, jh) = (&lean.jobs[0], &heavy.jobs[0]);
    assert_eq!(jl.x_hash, jh.x_hash, "overhead changed the arithmetic");
    assert_eq!(jl.iters, jh.iters);
    // One admission miss at ingest plus one dispatch charge.
    assert!(
        jh.done_s >= jl.done_s + 6e-3 - 1e-12,
        "overhead not reflected in completion: {} vs {}",
        jh.done_s,
        jl.done_s
    );
    // Device busy time is overhead-invariant: recover it from the
    // utilization aggregate (busy = util * ndev * makespan).
    let busy = |r: &ca_gmres_repro::serve::ServiceReport| r.utilization[0] * 2.0 * r.makespan_s;
    let (bl, bh) = (busy(&lean), busy(&heavy));
    assert!(
        (bl - bh).abs() <= 1e-12 * bl.max(bh),
        "overhead leaked into device time: {bl} vs {bh}"
    );
}

/// A device loss on one slice degrades only the jobs resident there:
/// the other slice's jobs converge unperturbed, the hit slice recovers
/// via executor rebuild, and the faulted run is still bit-reproducible.
#[test]
fn device_loss_degrades_only_the_resident_slice() {
    let (key, a) = problem();
    let b = rhs(&a);
    let run = || {
        let mut scfg = cfg(vec![2, 2]);
        scfg.policy = Policy::Sfq;
        // Kill device 0 of slice 0 early in its first solve.
        scfg.fault_plans = vec![(0, FaultPlan::new(7).with_device_loss(0, 40))];
        let mut svc = Service::new(scfg, vec![(key.clone(), a.clone())]);
        let jobs: Vec<JobRequest> =
            (0..6).map(|i| job(i, &key, b.clone(), i as f64 * 1e-4)).collect();
        svc.run(jobs)
    };
    let rep = run();
    assert_eq!(rep.jobs.len(), 6);
    assert!(
        rep.jobs.iter().all(|j| j.status == JobStatus::Converged),
        "device loss must not sink any job: {:?}",
        rep.jobs.iter().map(|j| j.status).collect::<Vec<_>>()
    );
    assert!(rep.solver_rebuilds >= 1, "the fault never fired");
    let on_healthy: Vec<_> = rep.jobs.iter().filter(|j| j.slice == 1).collect();
    assert!(!on_healthy.is_empty(), "no job ever ran on the healthy slice");
    for j in &on_healthy {
        assert!(j.relres <= RTOL, "healthy-slice job degraded: {}", j.relres);
    }
    // Healthy-slice solves are byte-identical to a fault-free reference.
    let mut ref_cfg = cfg(vec![2]);
    ref_cfg.admission_cost_s = 0.0;
    ref_cfg.dispatch_cost_s = 0.0;
    let mut ref_svc = Service::new(ref_cfg, vec![(key.clone(), a.clone())]);
    let ref_rep = ref_svc.run(vec![job(0, &key, b.clone(), 0.0)]);
    let cold_ref = ref_rep.jobs[0].x_hash;
    let first_healthy = on_healthy.iter().min_by_key(|j| j.id).expect("nonempty");
    if !first_healthy.warm {
        assert_eq!(first_healthy.x_hash, cold_ref, "healthy slice perturbed by remote fault");
    }
    // Bit-reproducibility of the whole faulted schedule.
    assert_eq!(rep.digest(), run().digest());
}
