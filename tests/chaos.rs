//! Chaos-harness integration tests: the fault-tolerant driver survives
//! an enumerated single-fault grid (fault kind × injection phase) and a
//! small seeded campaign of composed adversarial schedules, panicking
//! never, converging or failing typed, inside a simulated-time budget.

use std::panic::{catch_unwind, AssertUnwindSafe};

use ca_gmres_repro::chaos::{run_campaign, CampaignConfig, ChaosSchedule};
use ca_gmres_repro::gmres::prelude::*;
use ca_gmres_repro::gpusim::{FaultPlan, MultiGpu, SdcTargets};
use ca_gmres_repro::sparse::{gen, spmv};

const NDEV: usize = 3;
const FAULT_DEV: usize = 1;
const TIME_BUDGET_S: f64 = 1.0e6;

fn problem() -> (ca_gmres_repro::sparse::Csr, Vec<f64>) {
    let a = gen::laplace2d(12, 12);
    let n = a.nrows();
    let x_true: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 3) % 11) as f64 * 0.2).collect();
    let mut b = vec![0.0; n];
    spmv::spmv(&a, &x_true, &mut b);
    (a, b)
}

fn ft_cfg() -> FtConfig {
    let mut cfg = FtConfig {
        watchdog_timeout_s: Some(0.5),
        probe: Some(HealthProbe { watchdog_timeout_s: Some(0.5), straggler_threshold: Some(2.0) }),
        ..Default::default()
    };
    cfg.solver.s = 5;
    cfg.solver.m = 20;
    cfg.solver.rtol = 1e-6;
    cfg.solver.max_restarts = 300;
    cfg
}

/// One fault kind at one injection phase. `after_op` staggers when the
/// persistent faults (loss, slowdown, stalls) bite; the rate faults use
/// `seed` to decorrelate which ops get hit across phases.
fn single_fault_plan(kind: &str, after_op: u64, seed: u64) -> FaultPlan {
    let p = FaultPlan::new(seed);
    match kind {
        "sdc" => p.with_sdc(2e-3, SdcTargets::all()),
        "transfer" => p.with_transfer_faults(1e-2),
        "loss" => p.with_device_loss(FAULT_DEV, after_op),
        "slowdown" => p.with_slowdown(FAULT_DEV, 4.0, after_op),
        "stalls" => p.with_stalls(FAULT_DEV, 1e-3, 0.8),
        "hang" => p.with_stalls(FAULT_DEV, 1.0, 30.0),
        "link" => p.with_link_degrade(FAULT_DEV, 3.0),
        "alloc" => p.with_alloc_fault(FAULT_DEV, 2 + after_op / 50),
        other => panic!("unknown fault kind {other}"),
    }
}

/// Every (fault kind × injection phase) cell: the probe-armed driver
/// must converge (host-verified) or fail with a typed breakdown (or
/// honest restart exhaustion) — never panic, never run past the
/// simulated-time budget.
fn run_single_fault_grid(cfg: &FtConfig) {
    let (a, b) = problem();
    let kinds = ["sdc", "transfer", "loss", "slowdown", "stalls", "hang", "link", "alloc"];
    let phases: [(u64, u64); 3] = [(0, 101), (300, 202), (1500, 303)];
    for kind in kinds {
        for (after_op, seed) in phases {
            let plan = single_fault_plan(kind, after_op, seed);
            let cell = format!("{kind}@{after_op}/seed{seed}");
            let res = catch_unwind(AssertUnwindSafe(|| {
                let mut mg = MultiGpu::with_defaults(NDEV);
                mg.set_fault_plan(plan.clone());
                ca_gmres_ft(mg, &a, &b, cfg)
            }));
            let out = match res {
                Ok(out) => out,
                Err(_) => {
                    HealthProbe::reset_thread();
                    panic!("{cell}: driver panicked");
                }
            };
            assert!(
                out.stats.t_total.is_finite()
                    && out.stats.t_total >= 0.0
                    && out.stats.t_total <= TIME_BUDGET_S,
                "{cell}: simulated time {} out of budget",
                out.stats.t_total
            );
            if out.stats.converged {
                let mut ax = vec![0.0; b.len()];
                spmv::spmv(&a, &out.x, &mut ax);
                let rr: f64 = b.iter().zip(&ax).map(|(x, y)| (x - y) * (x - y)).sum();
                let bb: f64 = b.iter().map(|x| x * x).sum();
                let relres = (rr / bb).sqrt();
                assert!(
                    relres <= cfg.solver.rtol * 10.0,
                    "{cell}: claimed convergence but relres = {relres:.3e}"
                );
            } else {
                assert!(
                    out.stats.breakdown.is_some() || out.stats.restarts >= cfg.solver.max_restarts,
                    "{cell}: non-convergence with no typed breakdown"
                );
            }
        }
    }
}

#[test]
fn single_fault_grid_converges_or_fails_typed() {
    run_single_fault_grid(&ft_cfg());
}

/// The same grid with the f32-basis mixed-precision configuration: fault
/// handling and precision demotion must compose — no panic in any cell,
/// convergence is still host-verified at the f64 tolerance, and any
/// f32-conditioning breakdown the faults provoke surfaces typed.
#[test]
fn single_fault_grid_mixed_precision_converges_or_fails_typed() {
    let mut cfg = ft_cfg();
    cfg.solver.mpk_prec = ca_gmres_repro::scalar::Precision::F32;
    run_single_fault_grid(&cfg);
}

/// A small composed-fault campaign end to end: every invariant green,
/// no panics, zero-rate schedules verified bit-identical, and the
/// campaign digest reproducible run to run.
#[test]
fn composed_campaign_is_green_and_reproducible() {
    let cfg = CampaignConfig { seed: 77, schedules: 48, obs_checked: 4, ..Default::default() };
    let a = run_campaign(&cfg);
    assert!(a.ok(), "violations: {:#?} span nesting: {:?}", a.violations, a.span_nesting_error);
    assert_eq!(a.passed, 48);
    assert_eq!(a.panics, 0);
    assert!(a.converged > 0, "nothing converged in 48 schedules");
    assert!(a.probe_armed > 0, "probe never armed in 48 schedules");
    let b = run_campaign(&cfg);
    assert_eq!(a.digest, b.digest, "campaign digest must be reproducible");
}

/// Schedules synthesize deterministically and their fault plans honor
/// the zero-rate contract (no component armed when `is_zero_rate`).
#[test]
fn schedules_are_deterministic_and_zero_rate_honest() {
    let mut saw_zero = false;
    for i in 0..300 {
        let s1 = ChaosSchedule::generate(9, i);
        let s2 = ChaosSchedule::generate(9, i);
        assert_eq!(format!("{s1:?}"), format!("{s2:?}"), "schedule #{i} not deterministic");
        if s1.is_zero_rate() {
            saw_zero = true;
            let p = s1.plan();
            assert_eq!(p.sdc_rate, 0.0);
            assert!(p.device_loss.is_none());
        }
    }
    assert!(saw_zero, "no zero-rate schedule in 300 draws");
}
