//! Chaos-harness integration tests: the fault-tolerant driver survives
//! an enumerated single-fault grid (fault kind × injection phase) and a
//! small seeded campaign of composed adversarial schedules, panicking
//! never, converging or failing typed, inside a simulated-time budget.

use std::panic::{catch_unwind, AssertUnwindSafe};

use ca_gmres_repro::chaos::{run_campaign, CampaignConfig, ChaosSchedule};
use ca_gmres_repro::gmres::prelude::*;
use ca_gmres_repro::gpusim::{FaultPlan, MultiGpu, SdcTargets};
use ca_gmres_repro::sparse::{gen, spmv};

const NDEV: usize = 3;
const FAULT_DEV: usize = 1;
const TIME_BUDGET_S: f64 = 1.0e6;

fn problem() -> (ca_gmres_repro::sparse::Csr, Vec<f64>) {
    let a = gen::laplace2d(12, 12);
    let n = a.nrows();
    let x_true: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 3) % 11) as f64 * 0.2).collect();
    let mut b = vec![0.0; n];
    spmv::spmv(&a, &x_true, &mut b);
    (a, b)
}

fn ft_cfg() -> FtConfig {
    let mut cfg = FtConfig {
        watchdog_timeout_s: Some(0.5),
        probe: Some(HealthProbe { watchdog_timeout_s: Some(0.5), straggler_threshold: Some(2.0) }),
        ..Default::default()
    };
    cfg.solver.s = 5;
    cfg.solver.m = 20;
    cfg.solver.rtol = 1e-6;
    cfg.solver.max_restarts = 300;
    cfg
}

/// One fault kind at one injection phase. `after_op` staggers when the
/// persistent faults (loss, slowdown, stalls) bite; the rate faults use
/// `seed` to decorrelate which ops get hit across phases.
fn single_fault_plan(kind: &str, after_op: u64, seed: u64) -> FaultPlan {
    let p = FaultPlan::new(seed);
    match kind {
        "sdc" => p.with_sdc(2e-3, SdcTargets::all()),
        "transfer" => p.with_transfer_faults(1e-2),
        "loss" => p.with_device_loss(FAULT_DEV, after_op),
        "slowdown" => p.with_slowdown(FAULT_DEV, 4.0, after_op),
        "stalls" => p.with_stalls(FAULT_DEV, 1e-3, 0.8),
        "hang" => p.with_stalls(FAULT_DEV, 1.0, 30.0),
        "link" => p.with_link_degrade(FAULT_DEV, 3.0),
        "alloc" => p.with_alloc_fault(FAULT_DEV, 2 + after_op / 50),
        other => panic!("unknown fault kind {other}"),
    }
}

/// One grid cell: the driver must converge (host-verified) or fail with
/// a typed breakdown (or honest restart exhaustion) — never panic, never
/// run past the simulated-time budget. Returns the outcome for further
/// cell-specific assertions.
fn check_cell(
    cfg: &FtConfig,
    a: &ca_gmres_repro::sparse::Csr,
    b: &[f64],
    plan: FaultPlan,
    cell: &str,
) -> FtOutcome {
    let res = catch_unwind(AssertUnwindSafe(|| {
        let mut mg = MultiGpu::with_defaults(NDEV);
        mg.set_fault_plan(plan);
        ca_gmres_ft(mg, a, b, cfg)
    }));
    let out = match res {
        Ok(out) => out,
        Err(_) => {
            HealthProbe::reset_thread();
            BasisMonitor::reset_thread();
            panic!("{cell}: driver panicked");
        }
    };
    assert!(
        out.stats.t_total.is_finite()
            && out.stats.t_total >= 0.0
            && out.stats.t_total <= TIME_BUDGET_S,
        "{cell}: simulated time {} out of budget",
        out.stats.t_total
    );
    if out.stats.converged {
        let mut ax = vec![0.0; b.len()];
        spmv::spmv(a, &out.x, &mut ax);
        let rr: f64 = b.iter().zip(&ax).map(|(x, y)| (x - y) * (x - y)).sum();
        let bb: f64 = b.iter().map(|x| x * x).sum();
        let relres = (rr / bb).sqrt();
        assert!(
            relres <= cfg.solver.rtol * 10.0,
            "{cell}: claimed convergence but relres = {relres:.3e}"
        );
    } else {
        assert!(
            out.stats.breakdown.is_some() || out.stats.restarts >= cfg.solver.max_restarts,
            "{cell}: non-convergence with no typed breakdown"
        );
    }
    out
}

/// Every (fault kind × injection phase) cell of the hardware-fault grid.
fn run_single_fault_grid(cfg: &FtConfig) {
    let (a, b) = problem();
    let kinds = ["sdc", "transfer", "loss", "slowdown", "stalls", "hang", "link", "alloc"];
    let phases: [(u64, u64); 3] = [(0, 101), (300, 202), (1500, 303)];
    for kind in kinds {
        for (after_op, seed) in phases {
            let plan = single_fault_plan(kind, after_op, seed);
            let cell = format!("{kind}@{after_op}/seed{seed}");
            check_cell(cfg, &a, &b, plan, &cell);
        }
    }
}

#[test]
fn single_fault_grid_converges_or_fails_typed() {
    run_single_fault_grid(&ft_cfg());
}

/// The same grid with the f32-basis mixed-precision configuration: fault
/// handling and precision demotion must compose — no panic in any cell,
/// convergence is still host-verified at the f64 tolerance, and any
/// f32-conditioning breakdown the faults provoke surfaces typed.
#[test]
fn single_fault_grid_mixed_precision_converges_or_fails_typed() {
    let mut cfg = ft_cfg();
    cfg.solver.mpk_prec = ca_gmres_repro::scalar::Precision::F32;
    run_single_fault_grid(&cfg);
}

/// A small composed-fault campaign end to end: every invariant green,
/// no panics, zero-rate schedules verified bit-identical, and the
/// campaign digest reproducible run to run.
#[test]
fn composed_campaign_is_green_and_reproducible() {
    let cfg = CampaignConfig { seed: 77, schedules: 48, obs_checked: 4, ..Default::default() };
    let a = run_campaign(&cfg);
    assert!(a.ok(), "violations: {:#?} span nesting: {:?}", a.violations, a.span_nesting_error);
    assert_eq!(a.passed, 48);
    assert_eq!(a.panics, 0);
    assert!(a.converged > 0, "nothing converged in 48 schedules");
    assert!(a.probe_armed > 0, "probe never armed in 48 schedules");
    let b = run_campaign(&cfg);
    assert_eq!(a.digest, b.digest, "campaign digest must be reproducible");
}

/// Numerical single-fault kinds: deterministic ill-conditioning basis
/// perturbations, near-singular Gram nudges, and a forced cap-violating
/// step size.
fn numerical_fault_plan(kind: &str, seed: u64) -> FaultPlan {
    let p = FaultPlan::new(seed);
    match kind {
        "perturb" => p.with_basis_perturb(0.25, 0.85),
        "nudge" => p.with_gram_nudge(0.05, 0.95),
        "force-s" => p.with_s_override(16),
        other => panic!("unknown numerical fault kind {other}"),
    }
}

fn run_numerical_grid(cfg: &FtConfig) {
    let (a, b) = problem();
    for kind in ["perturb", "nudge", "force-s"] {
        for seed in [101u64, 202, 303] {
            let cell = format!("{kind}/seed{seed}");
            check_cell(cfg, &a, &b, numerical_fault_plan(kind, seed), &cell);
        }
    }
}

/// The unguarded (ladder-off) driver under every numerical fault kind:
/// it may break down, but it must break down *typed* — never panic,
/// never claim convergence it cannot host-verify.
#[test]
fn numerical_fault_grid_unguarded_converges_or_fails_typed() {
    run_numerical_grid(&ft_cfg());
}

/// The same grid with the full escalation ladder armed.
#[test]
fn numerical_fault_grid_with_ladder_converges_or_fails_typed() {
    let mut cfg = ft_cfg();
    cfg.ladder = Some(Ladder::default());
    run_numerical_grid(&cfg);
}

/// A ladder with exactly one rung enabled and a hair-trigger monitor, so
/// the natural conditioning of the unscaled monomial basis is enough to
/// fire it — each rung's mechanics get exercised in isolation without
/// depending on a fault magnitude landing in a window.
fn one_rung_ladder(rung: EscalationRung) -> Ladder {
    let mut l = Ladder {
        monitor: BasisMonitor { cond_warn: 10.0, cond_fail: 1e2, growth_fail: 1e12 },
        reorth: false,
        throttle: false,
        basis_switch: false,
        promote: false,
        max_escalations: 1000,
        s_floor: 2,
    };
    match rung {
        EscalationRung::Reorth => l.reorth = true,
        EscalationRung::Throttle => l.throttle = true,
        EscalationRung::BasisSwitch => l.basis_switch = true,
        EscalationRung::Promote => l.promote = true,
    }
    l
}

fn run_one_rung(cfg: &FtConfig, rung: EscalationRung) -> FtOutcome {
    let (a, b) = problem();
    let out = check_cell(cfg, &a, &b, FaultPlan::new(0), &format!("rung {rung:?}"));
    assert!(
        out.report.escalations.iter().any(|e| e.rung == rung),
        "{rung:?} rung never fired; escalations: {:?}",
        out.report.escalations
    );
    assert!(out.stats.converged, "{rung:?}-guarded solve must still converge");
    out
}

#[test]
fn ladder_reorth_rung_fires_and_converges() {
    let mut cfg = ft_cfg();
    cfg.ladder = Some(one_rung_ladder(EscalationRung::Reorth));
    run_one_rung(&cfg, EscalationRung::Reorth);
}

#[test]
fn ladder_throttle_rung_fires_and_converges() {
    let mut cfg = ft_cfg();
    cfg.ladder = Some(one_rung_ladder(EscalationRung::Throttle));
    run_one_rung(&cfg, EscalationRung::Throttle);
}

#[test]
fn ladder_basis_switch_rung_fires_and_converges() {
    let mut cfg = ft_cfg();
    cfg.solver.basis = BasisChoice::Monomial; // the switch is monomial -> Newton
    cfg.ladder = Some(one_rung_ladder(EscalationRung::BasisSwitch));
    let out = run_one_rung(&cfg, EscalationRung::BasisSwitch);
    // monomial -> Newton is one-way: at most one switch per solve
    let switches =
        out.report.escalations.iter().filter(|e| e.rung == EscalationRung::BasisSwitch).count();
    assert_eq!(switches, 1, "basis switch must fire exactly once");
}

#[test]
fn ladder_promote_rung_fires_and_converges() {
    let mut cfg = ft_cfg();
    cfg.solver.mpk_prec = ca_gmres_repro::scalar::Precision::F32;
    cfg.ladder = Some(one_rung_ladder(EscalationRung::Promote));
    let out = run_one_rung(&cfg, EscalationRung::Promote);
    let promotions =
        out.report.escalations.iter().filter(|e| e.rung == EscalationRung::Promote).count();
    assert_eq!(promotions, 1, "f32 -> f64 promotion must fire exactly once");
}

/// Schedules synthesize deterministically and their fault plans honor
/// the zero-rate contract (no component armed when `is_zero_rate`).
#[test]
fn schedules_are_deterministic_and_zero_rate_honest() {
    let mut saw_zero = false;
    for i in 0..300 {
        let s1 = ChaosSchedule::generate(9, i);
        let s2 = ChaosSchedule::generate(9, i);
        assert_eq!(format!("{s1:?}"), format!("{s2:?}"), "schedule #{i} not deterministic");
        if s1.is_zero_rate() {
            saw_zero = true;
            let p = s1.plan();
            assert_eq!(p.sdc_rate, 0.0);
            assert!(p.device_loss.is_none());
        }
    }
    assert!(saw_zero, "no zero-rate schedule in 300 draws");
}
