#![allow(clippy::needless_range_loop)]

//! Property-based tests over the core invariants, spanning crates.

use ca_gmres_repro::dense::{leja, norms, Mat};
use ca_gmres_repro::gmres::layout::Layout;
use ca_gmres_repro::gmres::mpk::{mpk, MpkPlan, MpkState};
use ca_gmres_repro::gmres::newton::BasisSpec;
use ca_gmres_repro::gmres::orth::{tsqr, TsqrKind};
use ca_gmres_repro::gpusim::{MatId, MultiGpu};
use ca_gmres_repro::sparse::{balance, gen, perm, rcm, spmv};
use proptest::prelude::*;

/// Distribute a matrix (host Mat) over devices, returning MatIds.
fn distribute(mg: &mut MultiGpu, full: &Mat) -> Vec<MatId> {
    let (n, cols) = (full.nrows(), full.ncols());
    let ndev = mg.n_gpus();
    (0..ndev)
        .map(|d| {
            let lo = d * n / ndev;
            let hi = (d + 1) * n / ndev;
            let dev = mg.device_mut(d);
            let v = dev.alloc_mat(hi - lo, cols).unwrap();
            for j in 0..cols {
                dev.mat_mut(v).set_col(j, &full.col(j)[lo..hi]);
            }
            v
        })
        .collect()
}

fn collect(mg: &MultiGpu, ids: &[MatId], n: usize, cols: usize) -> Mat {
    let ndev = ids.len();
    let mut out = Mat::zeros(n, cols);
    for d in 0..ndev {
        let lo = d * n / ndev;
        let m = mg.device(d).mat(ids[d]);
        for j in 0..cols {
            out.col_mut(j)[lo..lo + m.nrows()].copy_from_slice(m.col(j));
        }
    }
    out
}

fn random_tall(n: usize, k: usize, seed: u64) -> Mat {
    let mut state = seed | 1;
    Mat::from_fn(n, k, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tsqr_invariants_hold(
        seed in 1u64..5000,
        kind_idx in 0usize..5,
        ndev in 1usize..4,
        k in 2usize..8,
    ) {
        let kind = [TsqrKind::Mgs, TsqrKind::Cgs, TsqrKind::CholQr, TsqrKind::SvQr, TsqrKind::Caqr][kind_idx];
        let n = 120;
        let full = random_tall(n, k, seed);
        let mut mg = MultiGpu::with_defaults(ndev);
        let ids = distribute(&mut mg, &full);
        let r = tsqr(&mut mg, &ids, 0, k, kind, true).unwrap();
        let q = collect(&mg, &ids, n, k);
        // Q has orthonormal columns
        prop_assert!(norms::orthogonality_error(&q) < 1e-9);
        // QR reconstructs the input
        prop_assert!(norms::factorization_error(&full, &q, &r) < 1e-11);
        // R upper triangular with positive diagonal
        for j in 0..k {
            prop_assert!(r[(j, j)] > 0.0);
            for i in j + 1..k {
                prop_assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn mpk_equals_repeated_spmv(
        nx in 4usize..9,
        ny in 4usize..9,
        ndev in 1usize..4,
        s in 1usize..5,
    ) {
        let a = gen::laplace2d(nx, ny);
        let n = a.nrows();
        let layout = Layout::even(n, ndev);
        let plan = MpkPlan::new(&a, &layout, s);
        let mut mg = MultiGpu::with_defaults(ndev);
        let st = MpkState::load(&mut mg, &a, plan).unwrap();
        let x0: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let v_ids: Vec<MatId> = (0..ndev)
            .map(|d| {
                let nl = layout.nlocal(d);
                let dev = mg.device_mut(d);
                let v = dev.alloc_mat(nl, s + 1).unwrap();
                let lo = layout.range(d).start;
                dev.mat_mut(v).set_col(0, &x0[lo..lo + nl]);
                v
            })
            .collect();
        mpk(&mut mg, &st, &v_ids, 0, &BasisSpec::monomial(s)).unwrap();
        let mut xk = x0;
        for k in 1..=s {
            let mut y = vec![0.0; n];
            spmv::spmv(&a, &xk, &mut y);
            for d in 0..ndev {
                let lo = layout.range(d).start;
                let col = mg.device(d).mat(v_ids[d]).col(k);
                for (i, &cv) in col.iter().enumerate() {
                    prop_assert!((cv - y[lo + i]).abs() < 1e-11 * y[lo + i].abs().max(1.0));
                }
            }
            xk = y;
        }
    }

    #[test]
    fn rcm_permutation_preserves_spectrum_action(seed in 0u64..1000, n in 20usize..80) {
        let a = gen::random_diag_dominant(n, 4, seed);
        let p = rcm::rcm_permutation(&a);
        prop_assert!(perm::is_permutation(&p, n));
        let b = perm::permute_symmetric(&a, &p);
        prop_assert_eq!(a.nnz(), b.nnz());
        // action equivalence on a vector
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut y1 = vec![0.0; n];
        spmv::spmv(&a, &x, &mut y1);
        let xp = perm::permute_vec(&x, &p);
        let mut y2 = vec![0.0; n];
        spmv::spmv(&b, &xp, &mut y2);
        let y1p = perm::permute_vec(&y1, &p);
        for i in 0..n {
            prop_assert!((y1p[i] - y2[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn balance_produces_unit_column_norms(seed in 0u64..1000, n in 10usize..60) {
        let a = gen::random_diag_dominant(n, 3, seed);
        let (b, bal) = balance::balance(&a);
        let mut col_sq = vec![0.0f64; n];
        for i in 0..n {
            let (cols, vals) = b.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                col_sq[c as usize] += v * v;
            }
        }
        for s in col_sq {
            prop_assert!((s.sqrt() - 1.0).abs() < 1e-10);
        }
        prop_assert!(bal.row_scale.iter().all(|&d| d > 0.0 && d.is_finite()));
    }

    #[test]
    fn leja_order_is_permutation_with_max_modulus_first(
        vals in prop::collection::vec(-100.0f64..100.0, 1..20)
    ) {
        let pts: Vec<(f64, f64)> = vals.iter().map(|&v| (v, 0.0)).collect();
        let ord = leja::leja_order(&pts);
        prop_assert_eq!(ord.len(), pts.len());
        let max_mod = pts.iter().map(|p| p.0.abs()).fold(0.0, f64::max);
        prop_assert!((ord[0].0.abs() - max_mod).abs() < 1e-12);
        // multiset equality
        let mut a: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let mut b: Vec<f64> = ord.iter().map(|p| p.0).collect();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn mpk_plan_boundaries_nested(s in 2usize..6, ndev in 2usize..4) {
        // delta sets shrink as k grows: |delta^(d,k:s)| decreasing in k
        let a = gen::laplace2d(12, 12);
        let layout = Layout::even(a.nrows(), ndev);
        let plan = MpkPlan::new(&a, &layout, s);
        for dp in &plan.devs {
            for k in 1..s {
                prop_assert!(dp.boundary_nnz_from(k) >= dp.boundary_nnz_from(k + 1));
            }
            // need is exactly the union of levels and is disjoint from local
            for &r in &dp.need {
                prop_assert!(!dp.local.contains(&(r as usize)));
            }
        }
    }

    #[test]
    fn newton_spec_change_matrix_consistency(
        shifts in prop::collection::vec(-5.0f64..5.0, 1..6),
        s in 1usize..8,
    ) {
        let pts: Vec<(f64, f64)> = shifts.iter().map(|&v| (v, 0.0)).collect();
        let spec = BasisSpec::newton(&pts, s);
        prop_assert_eq!(spec.s(), s);
        let b = spec.change_matrix();
        prop_assert_eq!(b.nrows(), s + 1);
        // subdiagonal is all ones (the basis recurrence)
        for k in 0..s {
            prop_assert_eq!(b[(k + 1, k)], 1.0);
        }
    }
}

#[test]
fn gmres_residuals_never_increase_within_cycle() {
    // deterministic property over several matrices
    for seed in [1u64, 7, 23] {
        let a = gen::random_diag_dominant(100, 5, seed);
        let b: Vec<f64> = (0..100).map(|i| ((i + seed as usize) as f64 * 0.3).cos()).collect();
        let (x, stats) = ca_gmres_repro::gmres::cpu::gmres_cpu(
            &a,
            &b,
            40,
            ca_gmres_repro::gmres::orth::BorthKind::Mgs,
            1e-10,
            50,
            &ca_gmres_repro::gpusim::PerfModel::default(),
        );
        assert!(stats.converged);
        let mut r = vec![0.0; 100];
        spmv::spmv(&a, &x, &mut r);
        for i in 0..100 {
            r[i] = b[i] - r[i];
        }
        let rel = ca_gmres_repro::dense::blas1::nrm2(&r) / ca_gmres_repro::dense::blas1::nrm2(&b);
        assert!(rel <= 1e-10 * 1.01);
    }
}
