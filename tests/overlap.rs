//! Stream/event scheduling invariants.
//!
//! The executor's two schedules must relate the same way CUDA streams
//! relate to a fully synchronized launch sequence:
//!
//! * the event-driven time of *any* program never exceeds its fully
//!   synchronous (barrier) time — removing barriers only removes waiting;
//! * numerics and communication counters are schedule-invariant, because
//!   arithmetic executes eagerly in program order under both policies.

use ca_gmres_repro::gmres::prelude::*;
use ca_gmres_repro::gpusim::{MultiGpu, Schedule};
use ca_gmres_repro::sparse::{gen, perm};

fn lcg(x: &mut u64) -> u64 {
    *x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *x >> 33
}

/// Run a pseudo-random program of imbalanced kernels, transfers both ways,
/// and host compute under the given schedule, with a `sync()` after every
/// op (a no-op when event-driven). Returns end-to-end simulated time.
fn run_program(seed: u64, schedule: Schedule) -> f64 {
    let ndev = 3;
    let mut mg = MultiGpu::with_defaults(ndev);
    mg.set_schedule(schedule);
    let mats: Vec<_> =
        (0..ndev).map(|d| mg.device_mut(d).alloc_mat(20_000 * (d + 1), 4).unwrap()).collect();
    let mut rng = seed;
    for _ in 0..60 {
        match lcg(&mut rng) % 4 {
            0 => {
                let reps = (lcg(&mut rng) % 3 + 1) as usize;
                mg.run(|d, dev| {
                    // device-dependent work => imbalance for barriers to waste
                    for _ in 0..reps * (d + 1) {
                        dev.dot_cols(mats[d], 0, 1);
                    }
                });
            }
            1 => {
                let b = 8usize << (lcg(&mut rng) % 12);
                mg.to_host(&vec![b; ndev]).unwrap();
            }
            2 => {
                let b = 8usize << (lcg(&mut rng) % 12);
                mg.to_devices(&vec![b; ndev]).unwrap();
            }
            _ => mg.host_compute(1e6, 1e5),
        }
        mg.sync();
    }
    mg.time()
}

/// Property (a): for any program, event-driven time <= synchronous time.
#[test]
fn event_schedule_never_exceeds_synchronous_schedule() {
    let mut strictly_faster = 0;
    for seed in 0..16u64 {
        let t_sync = run_program(seed, Schedule::Barrier);
        let t_event = run_program(seed, Schedule::EventDriven);
        assert!(
            t_event <= t_sync * (1.0 + 1e-12),
            "seed {seed}: event-driven {t_event} exceeds synchronous {t_sync}"
        );
        if t_event < t_sync {
            strictly_faster += 1;
        }
    }
    assert!(strictly_faster > 0, "overlap never strictly won on any of the programs");
}

/// Full CA-GMRES solve under a schedule: solution bits, residual bits,
/// iteration path, counters, end-to-end time.
fn solve(schedule: Schedule) -> (Vec<u64>, u64, usize, u64, u64, f64) {
    let a = gen::convection_diffusion(14, 14, 1.5);
    let (a_ord, p, layout) = prepare(&a, Ordering::Kway, 3);
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| ((i * 31 % 17) as f64) - 8.0).collect();
    let mut mg = MultiGpu::with_defaults(3);
    mg.set_schedule(schedule);
    let cfg = CaGmresConfig { s: 6, m: 24, rtol: 1e-9, max_restarts: 300, ..Default::default() };
    let sys = System::new(&mut mg, &a_ord, layout, cfg.m, Some(cfg.s)).unwrap();
    sys.load_rhs(&mut mg, &perm::permute_vec(&b, &p)).unwrap();
    let out = ca_gmres(&mut mg, &sys, &cfg);
    assert!(out.stats.converged);
    let x = perm::unpermute_vec(&sys.download_x(&mut mg).unwrap(), &p);
    (
        x.iter().map(|v| v.to_bits()).collect(),
        out.stats.final_relres.to_bits(),
        out.stats.total_iters,
        out.stats.comm_msgs,
        out.stats.comm_bytes,
        out.stats.t_total,
    )
}

/// Properties (b numerics, c counters): eager (barrier) and enqueued
/// (event-driven) execution of the same solve produce bit-identical
/// residual histories and identical CommCounters — and the event-driven
/// schedule finishes strictly earlier in simulated time.
#[test]
fn solver_numerics_and_counters_are_schedule_invariant() {
    let (x_s, res_s, it_s, msgs_s, bytes_s, t_sync) = solve(Schedule::Barrier);
    let (x_e, res_e, it_e, msgs_e, bytes_e, t_event) = solve(Schedule::EventDriven);
    assert_eq!(x_s, x_e, "solution bits must not depend on the schedule");
    assert_eq!(res_s, res_e, "residual history must be bit-identical");
    assert_eq!(it_s, it_e, "iteration path must be identical");
    assert_eq!(msgs_s, msgs_e, "message counters identical eager vs enqueued");
    assert_eq!(bytes_s, bytes_e, "byte counters identical eager vs enqueued");
    assert!(
        t_event < t_sync,
        "event-driven schedule should strictly beat barriers: {t_event} vs {t_sync}"
    );
}

/// The prefetch mechanism in isolation: a host→device copy issued before
/// independent device work is hidden under that work by the event-driven
/// schedule, and honored as a dependency by the wait.
#[test]
fn async_prefetch_is_hidden_under_independent_work() {
    let mut mg = MultiGpu::with_defaults(2);
    let mats: Vec<_> = (0..2).map(|d| mg.device_mut(d).alloc_mat(150_000, 2).unwrap()).collect();
    // issue next-block prefetch, then compute the current block
    let events = mg.to_devices_async(&[2_000_000, 2_000_000]).unwrap();
    mg.run(|d, dev| {
        for _ in 0..4 {
            dev.dot_cols(mats[d], 0, 1);
        }
    });
    let compute_only = mg.device(0).clock();
    for (d, e) in events.iter().enumerate() {
        if let Some(e) = e {
            mg.wait_event(d, *e).unwrap();
        }
    }
    let t_overlapped = mg.time();
    // serial reference: transfer first, compute after
    let mut serial = MultiGpu::with_defaults(2);
    let smats: Vec<_> =
        (0..2).map(|d| serial.device_mut(d).alloc_mat(150_000, 2).unwrap()).collect();
    serial.to_devices(&[2_000_000, 2_000_000]).unwrap();
    serial.run(|d, dev| {
        for _ in 0..4 {
            dev.dot_cols(smats[d], 0, 1);
        }
    });
    let t_serial = serial.time();
    assert!(t_overlapped < t_serial, "prefetch not hidden: {t_overlapped} vs {t_serial}");
    assert!(t_overlapped >= compute_only, "the arrival dependency must still be honored");
}
