#![allow(clippy::needless_range_loop)]

//! Observability-layer integration tests: recordings are deterministic
//! (golden byte-identical exports), structurally sound (well-nested span
//! forests per track, under both schedules), and faithful (the span-derived
//! phase breakdown reproduces the independent `PhaseTimer` attribution).

use ca_gmres_repro::gmres::prelude::*;
use ca_gmres_repro::gmres::stats::SpanBreakdown;
use ca_gmres_repro::gpusim::{obs_ingest_traces, MultiGpu, Schedule};
use ca_gmres_repro::obs;
use ca_gmres_repro::sparse::{gen, perm};
use proptest::prelude::*;

/// CA-GMRES solve under a recording session with device tracing, returning
/// the solver stats and the drained recording.
fn profiled_solve(schedule: Schedule, ndev: usize, s: usize) -> (SolveStats, obs::Recording) {
    let a = gen::convection_diffusion(12, 12, 1.5);
    let (a_ord, p, layout) = prepare(&a, Ordering::Kway, ndev);
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| ((i * 31 % 17) as f64) - 8.0).collect();
    let mut mg = MultiGpu::with_defaults(ndev);
    mg.set_schedule(schedule);
    obs::start();
    mg.enable_trace();
    let cfg = CaGmresConfig { s, m: 20, rtol: 1e-8, max_restarts: 300, ..Default::default() };
    let sys = System::new(&mut mg, &a_ord, layout, cfg.m, Some(s)).unwrap();
    sys.load_rhs(&mut mg, &perm::permute_vec(&b, &p)).unwrap();
    let out = ca_gmres(&mut mg, &sys, &cfg);
    obs_ingest_traces(&mg.take_traces());
    let rec = obs::finish();
    assert!(out.stats.converged, "{:?}", out.stats.breakdown);
    (out.stats, rec)
}

/// Golden determinism: the same solve records byte-identical exports —
/// metrics JSON (and its hash), Perfetto trace, and folded stacks.
#[test]
fn exports_are_byte_identical_across_reruns() {
    let (_, r1) = profiled_solve(Schedule::Barrier, 3, 6);
    let (_, r2) = profiled_solve(Schedule::Barrier, 3, 6);
    assert!(!r1.is_empty());
    let m1 = r1.metrics.to_json();
    let m2 = r2.metrics.to_json();
    assert!(m1.len() > 2, "metrics snapshot must be non-trivial");
    assert_eq!(m1, m2, "metrics JSON diverged across reruns");
    assert_eq!(r1.metrics.hash_hex(), r2.metrics.hash_hex());
    assert_eq!(
        obs::export::chrome_trace(&r1),
        obs::export::chrome_trace(&r2),
        "Perfetto trace diverged across reruns"
    );
    assert_eq!(
        obs::export::folded_stacks(&r1),
        obs::export::folded_stacks(&r2),
        "folded stacks diverged across reruns"
    );
}

/// The span-derived phase breakdown must agree with the `PhaseTimer`
/// attribution in `SolveStats` to 1e-9 simulated seconds — two independent
/// attribution paths over the same clock reads.
#[test]
fn span_breakdown_matches_phase_timer_under_both_schedules() {
    for schedule in [Schedule::Barrier, Schedule::EventDriven] {
        let (stats, rec) = profiled_solve(schedule, 3, 6);
        let bd = SpanBreakdown::from_recording(&rec);
        let diff = bd.max_abs_diff(&stats);
        assert!(diff <= 1e-9, "{schedule:?}: span-vs-timer deviation {diff:.3e} s ({bd:?})");
        assert_eq!(bd.cycles, stats.restarts, "{schedule:?}: cycle span count");
    }
}

/// The recording carries all three layers: host phase spans, ingested
/// device kernel spans, copy-engine spans, and the metric registry keys
/// the comm paths and trace ingestion maintain.
#[test]
fn recording_covers_host_device_and_link_tracks() {
    let (_, rec) = profiled_solve(Schedule::Barrier, 2, 5);
    let on = |t: obs::Track| rec.spans.iter().filter(|s| s.track == t).count();
    assert!(on(obs::Track::Host) > 0, "host phase spans missing");
    for d in 0..2u32 {
        assert!(on(obs::Track::Device(d)) > 0, "gpu{d} kernel spans missing");
        assert!(on(obs::Track::Link(d)) > 0, "gpu{d} copy spans missing");
    }
    for key in ["comm.d2h.bytes", "comm.h2d.bytes", "solve.t_total_s", "kernel.spmv.calls"] {
        assert!(rec.metrics.values.contains_key(key), "metric {key} missing");
    }
    assert!(rec.samples.iter().any(|s| s.name == "relres"), "relres samples missing");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property: under the event-driven schedule (overlapping phases, no
    /// barrier flattening), every per-track span forest in a recorded
    /// solve is well-nested and monotone, for any device count and step
    /// size — including the ingested device/link spans.
    #[test]
    fn spans_stay_well_nested_under_event_driven_schedule(
        ndev in 1usize..4,
        s in 2usize..7,
    ) {
        let (_, rec) = profiled_solve(Schedule::EventDriven, ndev, s);
        prop_assert!(!rec.spans.is_empty());
        if let Err(e) = rec.check_well_nested() {
            prop_assert!(false, "not well-nested: {e}");
        }
    }
}
