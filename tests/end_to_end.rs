#![allow(clippy::needless_range_loop)]

//! End-to-end solver correctness across the whole stack: every TSQR
//! algorithm x basis x kernel mode x device count must produce the same
//! solution as a dense direct solve.

use ca_gmres_repro::dense::{blas2, chol, Mat};
use ca_gmres_repro::gmres::prelude::*;
use ca_gmres_repro::gpusim::MultiGpu;
use ca_gmres_repro::sparse::{gen, perm, spmv, Csr};

/// Dense direct reference solve (via normal equations on SPD test
/// matrices: A is SPD here, so Cholesky applies directly).
fn direct_solve(a: &Csr, b: &[f64]) -> Vec<f64> {
    let n = a.nrows();
    let mut dense = Mat::zeros(n, n);
    for i in 0..n {
        let (cols, vals) = a.row(i);
        for (&c, &v) in cols.iter().zip(vals) {
            dense[(i, c as usize)] = v;
        }
    }
    // A SPD: solve via Cholesky
    chol::solve_spd(&dense, b).expect("test matrix must be SPD")
}

fn residual_of(a: &Csr, x: &[f64], b: &[f64]) -> f64 {
    let mut r = vec![0.0; b.len()];
    spmv::spmv(a, x, &mut r);
    for i in 0..b.len() {
        r[i] = b[i] - r[i];
    }
    ca_gmres_repro::dense::blas1::nrm2(&r) / ca_gmres_repro::dense::blas1::nrm2(b)
}

fn test_problem() -> (Csr, Vec<f64>, Vec<f64>) {
    let a = gen::laplace2d(9, 9);
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| ((i * 13 % 17) as f64) - 8.0).collect();
    let x_direct = direct_solve(&a, &b);
    (a, b, x_direct)
}

#[test]
fn ca_gmres_matches_direct_solve_all_tsqr_kinds() {
    let (a, b, x_direct) = test_problem();
    for kind in [TsqrKind::Mgs, TsqrKind::Cgs, TsqrKind::CholQr, TsqrKind::SvQr, TsqrKind::Caqr] {
        for ndev in [1usize, 2, 3] {
            let (a_ord, p, layout) = prepare(&a, Ordering::Natural, ndev);
            let mut mg = MultiGpu::with_defaults(ndev);
            let cfg = CaGmresConfig {
                s: 5,
                m: 20,
                orth: OrthConfig { tsqr: kind, ..Default::default() },
                rtol: 1e-10,
                max_restarts: 400,
                ..Default::default()
            };
            let sys = System::new(&mut mg, &a_ord, layout, cfg.m, Some(cfg.s)).unwrap();
            sys.load_rhs(&mut mg, &perm::permute_vec(&b, &p)).unwrap();
            let out = ca_gmres(&mut mg, &sys, &cfg);
            assert!(out.stats.converged, "{kind} x {ndev} devs: {:?}", out.stats.breakdown);
            let x = perm::unpermute_vec(&sys.download_x(&mut mg).unwrap(), &p);
            for i in 0..x.len() {
                assert!(
                    (x[i] - x_direct[i]).abs() < 1e-6,
                    "{kind} x {ndev}: x[{i}] = {} vs direct {}",
                    x[i],
                    x_direct[i]
                );
            }
        }
    }
}

#[test]
fn gmres_and_ca_gmres_agree_on_nonsymmetric() {
    let a = gen::convection_diffusion(11, 11, 3.0);
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).sin()).collect();
    let ndev = 2;
    let (a_ord, p, layout) = prepare(&a, Ordering::Kway, ndev);
    let bp = perm::permute_vec(&b, &p);

    let mut mg1 = MultiGpu::with_defaults(ndev);
    let sys1 = System::new(&mut mg1, &a_ord, layout.clone(), 25, None).unwrap();
    sys1.load_rhs(&mut mg1, &bp).unwrap();
    let g = gmres(
        &mut mg1,
        &sys1,
        &GmresConfig { m: 25, orth: BorthKind::Cgs, rtol: 1e-9, max_restarts: 400 },
    );

    let mut mg2 = MultiGpu::with_defaults(ndev);
    let cfg = CaGmresConfig { s: 5, m: 25, rtol: 1e-9, max_restarts: 400, ..Default::default() };
    let sys2 = System::new(&mut mg2, &a_ord, layout, 25, Some(5)).unwrap();
    sys2.load_rhs(&mut mg2, &bp).unwrap();
    let c = ca_gmres(&mut mg2, &sys2, &cfg);

    assert!(g.stats.converged && c.stats.converged);
    let xg = perm::unpermute_vec(&sys1.download_x(&mut mg1).unwrap(), &p);
    let xc = perm::unpermute_vec(&sys2.download_x(&mut mg2).unwrap(), &p);
    assert!(residual_of(&a, &xg, &b) <= 1e-9 * 1.01);
    assert!(residual_of(&a, &xc, &b) <= 1e-9 * 1.01);
    for i in 0..n {
        assert!((xg[i] - xc[i]).abs() < 1e-6);
    }
}

#[test]
fn cpu_reference_matches_device_solution() {
    let (a, b, x_direct) = test_problem();
    let (x, stats) = gmres_cpu(
        &a,
        &b,
        20,
        BorthKind::Mgs,
        1e-10,
        300,
        &ca_gmres_repro::gpusim::PerfModel::default(),
    );
    assert!(stats.converged);
    for i in 0..x.len() {
        assert!((x[i] - x_direct[i]).abs() < 1e-6);
    }
}

#[test]
fn every_ordering_gives_same_solution() {
    let (a, b, x_direct) = test_problem();
    for ord in [Ordering::Natural, Ordering::Rcm, Ordering::Kway] {
        let (a_ord, p, layout) = prepare(&a, ord, 3);
        let mut mg = MultiGpu::with_defaults(3);
        let cfg =
            CaGmresConfig { s: 4, m: 16, rtol: 1e-10, max_restarts: 400, ..Default::default() };
        let sys = System::new(&mut mg, &a_ord, layout, cfg.m, Some(cfg.s)).unwrap();
        sys.load_rhs(&mut mg, &perm::permute_vec(&b, &p)).unwrap();
        let out = ca_gmres(&mut mg, &sys, &cfg);
        assert!(out.stats.converged, "{ord}");
        let x = perm::unpermute_vec(&sys.download_x(&mut mg).unwrap(), &p);
        for i in 0..x.len() {
            assert!((x[i] - x_direct[i]).abs() < 1e-6, "{ord}: x[{i}]");
        }
    }
}

#[test]
fn balanced_system_solution_maps_back() {
    // full paper §VI pipeline: balance -> partition -> solve -> unscale
    let a = gen::circuit(800, 3);
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| if i % 97 == 0 { 1.0 } else { 0.0 }).collect();
    let (ab, bal) = ca_gmres_repro::sparse::balance::balance(&a);
    let bb = bal.scale_rhs(&b);
    let (a_ord, p, layout) = prepare(&ab, Ordering::Kway, 2);
    let mut mg = MultiGpu::with_defaults(2);
    let cfg = CaGmresConfig { s: 5, m: 30, rtol: 1e-10, max_restarts: 600, ..Default::default() };
    let sys = System::new(&mut mg, &a_ord, layout, cfg.m, Some(cfg.s)).unwrap();
    sys.load_rhs(&mut mg, &perm::permute_vec(&bb, &p)).unwrap();
    let out = ca_gmres(&mut mg, &sys, &cfg);
    assert!(out.stats.converged);
    let y = perm::unpermute_vec(&sys.download_x(&mut mg).unwrap(), &p);
    let x = bal.unscale_solution(&y);
    assert!(residual_of(&a, &x, &b) < 1e-7, "relres {}", residual_of(&a, &x, &b));
}

#[test]
fn hessenberg_least_squares_reduces_residual_monotonically() {
    // end-to-end: the Givens LSQ residual estimate must match the true
    // residual of the iterate at each restart boundary
    let (a, b, _) = test_problem();
    let (a_ord, p, layout) = prepare(&a, Ordering::Natural, 2);
    let mut mg = MultiGpu::with_defaults(2);
    let sys = System::new(&mut mg, &a_ord, layout, 8, None).unwrap();
    sys.load_rhs(&mut mg, &perm::permute_vec(&b, &p)).unwrap();
    let mut prev = f64::INFINITY;
    for cycle in 0..6 {
        let out = gmres(
            &mut mg,
            &sys,
            &GmresConfig { m: 8, orth: BorthKind::Mgs, rtol: 1e-30, max_restarts: 1 },
        );
        let x = perm::unpermute_vec(&sys.download_x(&mut mg).unwrap(), &p);
        let r = residual_of(&a, &x, &b);
        assert!(r <= prev * (1.0 + 1e-10), "residual increased: {r} > {prev}");
        if cycle == 0 {
            // first call starts from x = 0, so its reported relative
            // residual is relative to ||b|| and must match ours
            assert!((r - out.stats.final_relres).abs() < 1e-8 + 1e-3 * r);
        }
        prev = r;
    }
}

#[test]
fn preconditioned_ca_gmres_full_pipeline() {
    // precondition -> balance -> partition -> CA-GMRES -> recover, with
    // the residual verified against the ORIGINAL system
    use ca_gmres_repro::gmres::precond::{Applied, Precond};
    let a = gen::cantilever(5, 5, 5);
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| ((i * 11 % 19) as f64) - 9.0).collect();

    for kind in [Precond::Jacobi, Precond::BlockJacobi { block: 3 }] {
        let prec = Applied::build(&a, kind);
        let (ab, bal) = ca_gmres_repro::sparse::balance::balance(&prec.a_precond);
        let bb = bal.scale_rhs(&b);
        let (a_ord, p, layout) = prepare(&ab, Ordering::Kway, 2);
        let mut mg = MultiGpu::with_defaults(2);
        let cfg =
            CaGmresConfig { s: 6, m: 24, rtol: 1e-9, max_restarts: 400, ..Default::default() };
        let sys = System::new(&mut mg, &a_ord, layout, cfg.m, Some(cfg.s)).unwrap();
        sys.load_rhs(&mut mg, &perm::permute_vec(&bb, &p)).unwrap();
        let out = ca_gmres(&mut mg, &sys, &cfg);
        assert!(out.stats.converged, "{kind:?}: {:?}", out.stats.breakdown);
        let y = perm::unpermute_vec(&sys.download_x(&mut mg).unwrap(), &p);
        let y = bal.unscale_solution(&y);
        let x = prec.recover(&y);
        let r = residual_of(&a, &x, &b);
        assert!(r < 1e-7, "{kind:?}: original-system relres {r}");
    }
}

#[test]
fn hyb_format_same_solution_as_ellpack() {
    use ca_gmres_repro::gmres::mpk::SpmvFormat;
    let a = gen::circuit_hubbed(3000, 4);
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| ((i % 13) as f64) - 6.0).collect();
    let (ab, _) = ca_gmres_repro::sparse::balance::balance(&a);
    let (a_ord, p, layout) = prepare(&ab, Ordering::Kway, 2);
    let bp = perm::permute_vec(&b, &p);
    let solve = |format| {
        let mut mg = MultiGpu::with_defaults(2);
        let sys =
            System::new_with_format(&mut mg, &a_ord, layout.clone(), 30, Some(10), format).unwrap();
        sys.load_rhs(&mut mg, &bp).unwrap();
        let cfg =
            CaGmresConfig { s: 10, m: 30, rtol: 1e-8, max_restarts: 400, ..Default::default() };
        let out = ca_gmres(&mut mg, &sys, &cfg);
        assert!(out.stats.converged);
        (sys.download_x(&mut mg).unwrap(), out.stats.t_total)
    };
    let (x_ell, t_ell) = solve(SpmvFormat::Ell);
    let (x_hyb, t_hyb) = solve(SpmvFormat::Hyb { quantile: 0.97 });
    for i in 0..n {
        assert!((x_ell[i] - x_hyb[i]).abs() < 1e-8, "row {i}");
    }
    assert!(t_hyb < t_ell, "HYB {t_hyb} should beat ELL {t_ell} on the hubbed matrix");
}

#[test]
fn matrix_market_pipeline_roundtrip() {
    // generate -> write .mtx -> read -> solve; the CLI's file path
    let a = gen::convection_diffusion(9, 9, 1.0);
    let path = std::env::temp_dir().join("ca_gmres_e2e_roundtrip.mtx");
    ca_gmres_repro::sparse::io::write_matrix_market(&a, &path).unwrap();
    let a2 = ca_gmres_repro::sparse::io::read_matrix_market(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(a.nnz(), a2.nnz());

    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
    let solve = |m: &Csr| {
        let (a_ord, p, layout) = prepare(m, Ordering::Kway, 2);
        let mut mg = MultiGpu::with_defaults(2);
        let cfg =
            CaGmresConfig { s: 5, m: 20, rtol: 1e-10, max_restarts: 300, ..Default::default() };
        let sys = System::new(&mut mg, &a_ord, layout, cfg.m, Some(cfg.s)).unwrap();
        sys.load_rhs(&mut mg, &perm::permute_vec(&b, &p)).unwrap();
        let out = ca_gmres(&mut mg, &sys, &cfg);
        assert!(out.stats.converged);
        perm::unpermute_vec(&sys.download_x(&mut mg).unwrap(), &p)
    };
    let x1 = solve(&a);
    let x2 = solve(&a2);
    for i in 0..n {
        assert!((x1[i] - x2[i]).abs() < 1e-10, "row {i}");
    }
}

#[test]
fn gmres_respects_restart_budget() {
    let a = gen::laplace2d(10, 10);
    let (a_ord, p, layout) = prepare(&a, Ordering::Natural, 2);
    let mut mg = MultiGpu::with_defaults(2);
    let sys = System::new(&mut mg, &a_ord, layout, 10, None).unwrap();
    let b: Vec<f64> = (0..100).map(|i| (i as f64 * 0.31).sin()).collect();
    sys.load_rhs(&mut mg, &perm::permute_vec(&b, &p)).unwrap();
    // rtol 0 can never be met: exactly max_restarts cycles, not converged
    let out = gmres(
        &mut mg,
        &sys,
        &GmresConfig { m: 10, orth: BorthKind::Cgs, rtol: 0.0, max_restarts: 4 },
    );
    assert!(!out.stats.converged);
    assert_eq!(out.stats.restarts, 4);
    assert_eq!(out.stats.total_iters, 40);
}

#[test]
fn ca_gmres_respects_restart_budget() {
    let a = gen::laplace2d(10, 10);
    let (a_ord, p, layout) = prepare(&a, Ordering::Natural, 2);
    let mut mg = MultiGpu::with_defaults(2);
    let sys = System::new(&mut mg, &a_ord, layout, 12, Some(4)).unwrap();
    let b: Vec<f64> = (0..100).map(|i| (i as f64 * 0.31).sin()).collect();
    sys.load_rhs(&mut mg, &perm::permute_vec(&b, &p)).unwrap();
    let cfg = CaGmresConfig { s: 4, m: 12, rtol: 0.0, max_restarts: 5, ..Default::default() };
    let out = ca_gmres(&mut mg, &sys, &cfg);
    assert!(!out.stats.converged);
    assert_eq!(out.stats.restarts, 5);
    // 1 standard harvest cycle + 4 CA cycles
    assert_eq!(out.ca_stats.restarts, 4);
}

#[test]
fn dense_gemv_consistency_with_sparse() {
    // cross-crate sanity: dense gemv of the densified matrix equals spmv
    let a = gen::laplace2d(5, 5);
    let n = a.nrows();
    let mut dense = Mat::zeros(n, n);
    for i in 0..n {
        let (cols, vals) = a.row(i);
        for (&c, &v) in cols.iter().zip(vals) {
            dense[(i, c as usize)] = v;
        }
    }
    let x: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
    let mut y1 = vec![0.0; n];
    let mut y2 = vec![0.0; n];
    spmv::spmv(&a, &x, &mut y1);
    blas2::gemv_n(1.0, &dense, &x, 0.0, &mut y2);
    for i in 0..n {
        assert!((y1[i] - y2[i]).abs() < 1e-13);
    }
}
